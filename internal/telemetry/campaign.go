package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"runtime"
	"sort"
	"sync"
	"time"

	"portsim/internal/cpustack"
)

// CellSample is the end-of-cell snapshot the experiment runner's observer
// delivers: cell identity, outcome and the port-level rates derived from
// the cell's final stats.Set. Nothing here is sampled mid-simulation — the
// hot loop stays untouched whether telemetry is on or off.
type CellSample struct {
	Machine    string
	Workload   string
	ConfigJSON []byte

	MemoHit bool
	// StoreHit marks a cell restored from the durable cell store. Like a
	// memo hit it was not simulated in this run: its cycles, instructions
	// and (zero) wall time stay out of the simulation-rate metrics.
	StoreHit bool
	Failed   bool
	Error    string

	WallSeconds float64
	Cycles      uint64
	Insts       uint64

	// PortUtilization is the mean fraction of port slots granted per
	// cycle, PortRejectRate the fraction of port offers refused; negative
	// values mean "unknown" (failed cell) and are not observed.
	PortUtilization float64
	PortRejectRate  float64

	// CPIStack is the cell's frozen cycle-accounting breakdown, nil when
	// the campaign ran without -cpistack.
	CPIStack *cpustack.Snapshot
}

// CellStartSample announces a cell entering simulation: its identity plus
// the live accounting stack the simulator is charging (nil without
// -cpistack). The campaign tracks it until the matching CellDone, so
// /campaign can report running cells with a live CPI snapshot.
type CellStartSample struct {
	Machine    string
	Workload   string
	ConfigJSON []byte
	Experiment string
	Stack      *cpustack.Stack
}

// runningCell is the campaign's record of an in-flight simulation.
type runningCell struct {
	machine    string
	workload   string
	configHash string
	experiment string
	started    time.Time
	stack      *cpustack.Stack
}

// Campaign accumulates a run's telemetry: the live registry metrics served
// by -listen and the per-cell rows a manifest is built from. It is safe
// for concurrent use by the runner's worker pool.
type Campaign struct {
	start        time.Time
	startMallocs uint64

	cellsPlanned *Gauge
	cellsDone    *Counter
	cellsFailed  *Counter
	memoHits     *Counter
	storeHits    *Counter
	simCycles    *Counter
	simInsts     *Counter
	wallHist     *Histogram
	utilHist     *Histogram
	rejectHist   *Histogram

	planned int

	// cpiCounters holds one registry counter per accounting bucket once
	// EnableCPIStack runs; nil while CPI accounting is off.
	cpiCounters []*Counter

	mu      sync.Mutex
	cells   []ManifestCell
	running map[string]runningCell
}

// mallocCount reads the runtime's cumulative allocation counter.
func mallocCount() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// NewCampaign registers the campaign metric set on reg and returns the
// accumulator. planned is the number of cells the selected experiments
// will submit (0 when unknown).
func NewCampaign(reg *Registry, planned int) *Campaign {
	c := &Campaign{
		start:        time.Now(),
		startMallocs: mallocCount(),
		planned:      planned,
		running:      make(map[string]runningCell),

		cellsPlanned: reg.Gauge("portsim_cells_planned",
			"Experiment cells the selected suite will submit."),
		cellsDone: reg.Counter("portsim_cells_done_total",
			"Experiment cells completed (simulated, memoised or failed)."),
		cellsFailed: reg.Counter("portsim_cells_failed_total",
			"Experiment cells that failed (panic, deadline, watchdog stall)."),
		memoHits: reg.Counter("portsim_cells_memo_hits_total",
			"Experiment cells satisfied from the runner's memo cache."),
		storeHits: reg.Counter("portsim_cells_store_hits_total",
			"Experiment cells restored from the durable cell store."),
		simCycles: reg.Counter("portsim_sim_cycles_total",
			"Simulated cycles across non-memoised cells."),
		simInsts: reg.Counter("portsim_sim_insts_total",
			"Committed instructions across non-memoised cells."),
		wallHist: reg.Histogram("portsim_cell_wall_seconds",
			"Wall-clock time per simulated (non-memoised) cell.",
			[]float64{0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 120}),
		utilHist: reg.Histogram("portsim_port_utilization",
			"Mean fraction of cache-port slots granted per cycle, one sample per cell.",
			[]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1}),
		rejectHist: reg.Histogram("portsim_port_reject_rate",
			"Fraction of cache-port offers refused, one sample per cell.",
			[]float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 1}),
	}
	c.cellsPlanned.Set(float64(planned))
	reg.GaugeFunc("portsim_sim_cycles_per_second",
		"Simulated cycles per wall second since campaign start.",
		func() float64 {
			secs := time.Since(c.start).Seconds()
			if secs <= 0 {
				return 0
			}
			return float64(c.simCycles.Value()) / secs
		})
	reg.GaugeFunc("portsim_allocs_per_1k_cycles",
		"Heap allocations per thousand simulated cycles since campaign start.",
		func() float64 {
			cycles := c.simCycles.Value()
			if cycles == 0 {
				return 0
			}
			allocs := mallocCount() - c.startMallocs //portlint:ignore cyclemath runtime.MemStats.Mallocs is monotonic and startMallocs sampled the earlier value
			return float64(allocs) / (float64(cycles) / 1000)
		})
	return c
}

// EnableCPIStack registers one cycle counter per accounting bucket
// (portsim_cpi_<bucket>_cycles_total) and arms the campaign to fold each
// simulated cell's breakdown into them. The registry has no label support,
// so the bucket is part of the metric name.
func (c *Campaign) EnableCPIStack(reg *Registry) {
	c.cpiCounters = make([]*Counter, cpustack.NumBuckets)
	for b := cpustack.Bucket(0); b < cpustack.NumBuckets; b++ {
		c.cpiCounters[b] = reg.Counter(
			"portsim_cpi_"+b.MetricName()+"_cycles_total",
			"Simulated cycles attributed to "+b.String()+" across non-memoised cells.")
	}
}

// cellKey identifies one in-flight cell for the running set.
func cellKey(machine, workload, configHash string) string {
	return machine + "\x00" + workload + "\x00" + configHash
}

// CellStarted records a cell entering simulation. The matching CellDone
// removes it; memo and store hits never start, so they never appear here.
func (c *Campaign) CellStarted(s CellStartSample) {
	rc := runningCell{
		machine:    s.Machine,
		workload:   s.Workload,
		configHash: HashConfig(s.ConfigJSON),
		experiment: s.Experiment,
		started:    time.Now(),
		stack:      s.Stack,
	}
	c.mu.Lock()
	c.running[cellKey(rc.machine, rc.workload, rc.configHash)] = rc
	c.mu.Unlock()
}

// CellDone folds one completed cell into the metrics and the manifest
// rows.
func (c *Campaign) CellDone(s CellSample) {
	c.cellsDone.Inc()
	if s.Failed {
		c.cellsFailed.Inc()
	}
	if s.MemoHit {
		c.memoHits.Inc()
	} else if s.StoreHit {
		c.storeHits.Inc()
	} else if !s.Failed {
		c.simCycles.Add(s.Cycles)
		c.simInsts.Add(s.Insts)
		c.wallHist.Observe(s.WallSeconds)
		if s.PortUtilization >= 0 {
			c.utilHist.Observe(s.PortUtilization)
		}
		if s.PortRejectRate >= 0 {
			c.rejectHist.Observe(s.PortRejectRate)
		}
	}
	if c.cpiCounters != nil && s.CPIStack != nil && !s.MemoHit && !s.StoreHit {
		for b := cpustack.Bucket(0); b < cpustack.NumBuckets; b++ {
			c.cpiCounters[b].Add(s.CPIStack.Get(b))
		}
	}

	cell := ManifestCell{
		Workload:    s.Workload,
		Machine:     s.Machine,
		ConfigHash:  HashConfig(s.ConfigJSON),
		Outcome:     OutcomeOK,
		MemoHit:     s.MemoHit,
		StoreHit:    s.StoreHit,
		WallSeconds: s.WallSeconds,
		Cycles:      s.Cycles,
		Insts:       s.Insts,
		CPIStack:    s.CPIStack.Map(),
	}
	if s.Failed {
		cell.Outcome = OutcomeFailed
		cell.Error = s.Error
		if cell.Error == "" {
			cell.Error = "unknown failure"
		}
	}
	c.mu.Lock()
	delete(c.running, cellKey(cell.Machine, cell.Workload, cell.ConfigHash))
	c.cells = append(c.cells, cell)
	c.mu.Unlock()
}

// Done returns the number of cells completed so far.
func (c *Campaign) Done() int { return int(c.cellsDone.Value()) }

// MemoHits returns how many completed cells were satisfied from the
// result memo instead of being simulated. Throughput and ETA estimates
// must exclude them: a memo hit completes in microseconds, so folding it
// into a per-cell rate makes the remaining full-cost cells look nearly
// free.
func (c *Campaign) MemoHits() int { return int(c.memoHits.Value()) }

// StoreHits returns how many completed cells were restored from the durable
// cell store. Like memo hits, they are excluded from throughput and ETA
// estimates: a restore costs one file read, not a simulation.
func (c *Campaign) StoreHits() int { return int(c.storeHits.Value()) }

// SimCycles returns the simulated-cycle total so far.
func (c *Campaign) SimCycles() uint64 { return c.simCycles.Value() }

// Elapsed returns the wall time since the campaign started.
func (c *Campaign) Elapsed() time.Duration { return time.Since(c.start) }

// CampaignStatusSchema identifies the /campaign JSON document format.
const CampaignStatusSchema = "portsim-campaign/v1"

// RunningStatus is one in-flight cell in a CampaignStatus: identity plus a
// live read of the accounting stack the simulator is charging right now.
type RunningStatus struct {
	Workload    string  `json:"workload"`
	Machine     string  `json:"machine"`
	ConfigHash  string  `json:"config_hash"`
	Experiment  string  `json:"experiment,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	// Cycles is the live bucket total — the cell's simulated-cycle count
	// at the instant of the snapshot (accounting charges exactly one
	// bucket per cycle). Zero without -cpistack.
	Cycles   uint64            `json:"cycles"`
	CPIStack map[string]uint64 `json:"cpi_stack,omitempty"`
}

// CellStatus is one completed cell in a CampaignStatus.
type CellStatus struct {
	Workload   string `json:"workload"`
	Machine    string `json:"machine"`
	ConfigHash string `json:"config_hash"`
	// State is "ok", "failed", "memo-hit" or "store-hit".
	State       string            `json:"state"`
	WallSeconds float64           `json:"wall_seconds"`
	Cycles      uint64            `json:"cycles"`
	Error       string            `json:"error,omitempty"`
	CPIStack    map[string]uint64 `json:"cpi_stack,omitempty"`
}

// CampaignStatus is the /campaign JSON document: campaign-level progress
// plus per-cell state for in-flight and completed cells.
type CampaignStatus struct {
	Schema         string  `json:"schema"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	Planned        int     `json:"planned"`
	Done           int     `json:"done"`
	Failed         int     `json:"failed"`
	MemoHits       int     `json:"memo_hits"`
	StoreHits      int     `json:"store_hits"`
	// Pending counts planned cells not yet started (0 when the plan size
	// was unknown).
	Pending   int    `json:"pending"`
	SimCycles uint64 `json:"sim_cycles"`
	// MCyclesPerSecond is the campaign-wide simulation rate in millions
	// of cycles per wall second.
	MCyclesPerSecond float64         `json:"mcycles_per_second"`
	Running          []RunningStatus `json:"running"`
	Cells            []CellStatus    `json:"cells"`
}

// Status snapshots the campaign for /campaign. Running cells read their
// live stacks (atomics — no coordination with the simulating workers);
// completed cells reuse the manifest rows.
func (c *Campaign) Status() *CampaignStatus {
	now := time.Now()
	st := &CampaignStatus{
		Schema:         CampaignStatusSchema,
		ElapsedSeconds: now.Sub(c.start).Seconds(),
		Planned:        c.planned,
		Done:           int(c.cellsDone.Value()),
		Failed:         int(c.cellsFailed.Value()),
		MemoHits:       int(c.memoHits.Value()),
		StoreHits:      int(c.storeHits.Value()),
		SimCycles:      c.simCycles.Value(),
	}
	if st.ElapsedSeconds > 0 {
		st.MCyclesPerSecond = float64(st.SimCycles) / st.ElapsedSeconds / 1e6
	}
	c.mu.Lock()
	st.Running = make([]RunningStatus, 0, len(c.running))
	for _, rc := range c.running {
		r := RunningStatus{
			Workload:    rc.workload,
			Machine:     rc.machine,
			ConfigHash:  rc.configHash,
			Experiment:  rc.experiment,
			WallSeconds: now.Sub(rc.started).Seconds(),
		}
		if rc.stack != nil {
			snap := rc.stack.Snapshot()
			r.Cycles = snap.Total()
			r.CPIStack = snap.Map()
		}
		st.Running = append(st.Running, r)
	}
	st.Cells = make([]CellStatus, 0, len(c.cells))
	for _, cell := range c.cells {
		cs := CellStatus{
			Workload:    cell.Workload,
			Machine:     cell.Machine,
			ConfigHash:  cell.ConfigHash,
			State:       cell.Outcome,
			WallSeconds: cell.WallSeconds,
			Cycles:      cell.Cycles,
			Error:       cell.Error,
			CPIStack:    cell.CPIStack,
		}
		switch {
		case cell.MemoHit:
			cs.State = "memo-hit"
		case cell.StoreHit:
			cs.State = "store-hit"
		}
		st.Cells = append(st.Cells, cs)
	}
	c.mu.Unlock()
	if c.planned > 0 {
		if pending := c.planned - st.Done - len(st.Running); pending > 0 {
			st.Pending = pending
		}
	}
	sort.Slice(st.Running, func(i, j int) bool {
		a, b := st.Running[i], st.Running[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		return a.ConfigHash < b.ConfigHash
	})
	return st
}

// ManifestInfo carries the campaign-level fields of a manifest that the
// accumulator cannot know itself.
type ManifestInfo struct {
	CreatedAt   time.Time
	Command     []string
	Seed        int64
	Insts       uint64
	Workloads   []string
	Parallel    int
	Experiments []string
	BenchJSON   string
	TraceOut    string
	Bundles     []string
	WallSeconds float64
	// Store is the durable-store summary, nil when the campaign ran
	// without one.
	Store *ManifestStore
	// Arenas is the trace-arena summary, nil when arenas were disabled.
	Arenas *ManifestArenas
}

// BuildManifest assembles the manifest from the accumulated cells. Cells
// are sorted by (workload, machine, config hash, memo-hit), so the
// document is deterministic regardless of worker-pool completion order.
func (c *Campaign) BuildManifest(info ManifestInfo) *Manifest {
	c.mu.Lock()
	cells := make([]ManifestCell, len(c.cells))
	copy(cells, c.cells)
	c.mu.Unlock()
	sort.Slice(cells, func(i, j int) bool {
		a, b := cells[i], cells[j]
		if a.Workload != b.Workload {
			return a.Workload < b.Workload
		}
		if a.Machine != b.Machine {
			return a.Machine < b.Machine
		}
		if a.ConfigHash != b.ConfigHash {
			return a.ConfigHash < b.ConfigHash
		}
		return !a.MemoHit && b.MemoHit
	})

	var totals ManifestTotals
	totals.WallSeconds = info.WallSeconds
	var cpi map[string]uint64
	distinct := make(map[string]bool)
	for _, cell := range cells {
		totals.Cells++
		distinct[cell.ConfigHash] = true
		if cell.Outcome == OutcomeFailed {
			totals.Failed++
		}
		switch {
		case cell.MemoHit:
			totals.MemoHits++
		case cell.StoreHit:
			totals.StoreHits++
		case cell.Outcome == OutcomeOK:
			totals.SimCycles += cell.Cycles
			totals.SimInsts += cell.Insts
			for name, v := range cell.CPIStack {
				if cpi == nil {
					cpi = make(map[string]uint64)
				}
				cpi[name] += v
			}
		}
	}

	return &Manifest{
		Schema:      ManifestSchema,
		CreatedAt:   info.CreatedAt.Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Command:     info.Command,
		Seed:        info.Seed,
		Insts:       info.Insts,
		Workloads:   info.Workloads,
		Parallel:    info.Parallel,
		Experiments: info.Experiments,
		ConfigHash:  campaignHash(info, distinct),
		BenchJSON:   info.BenchJSON,
		TraceOut:    info.TraceOut,
		Bundles:     info.Bundles,
		Store:       info.Store,
		Arenas:      info.Arenas,
		Cells:       cells,
		Totals:      totals,
		CPIStack:    cpi,
	}
}

// campaignHash fingerprints the campaign inputs: seed, budget, workload
// list and the sorted set of distinct machine-configuration hashes.
func campaignHash(info ManifestInfo, distinct map[string]bool) string {
	hashes := make([]string, 0, len(distinct))
	for h := range distinct {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	payload, _ := json.Marshal(struct {
		Seed      int64    `json:"seed"`
		Insts     uint64   `json:"insts"`
		Workloads []string `json:"workloads"`
		Configs   []string `json:"configs"`
	}{info.Seed, info.Insts, info.Workloads, hashes})
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:6])
}
