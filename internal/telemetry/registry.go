// Package telemetry is the observability layer over a portsim campaign: a
// live metrics registry served over HTTP (Prometheus text, expvar-style
// JSON, health), a Chrome trace-event exporter for flight-recorder tails
// (Perfetto / chrome://tracing), and machine-readable run manifests tying
// every table to its exact inputs.
//
// The layering contract, enforced by portlint's layerimports analyzer: the
// simulator packages (internal/cpu, internal/core, internal/mem) never
// import this package — telemetry is fed exclusively from end-of-cell
// stats.Set snapshots and the experiment runner's per-cell observer
// callback, both outside the hot cycle loop. A campaign with telemetry
// disabled carries a nil sink everywhere and pays nothing; tables are
// byte-identical either way.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. It is safe for concurrent
// use.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. It is safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a cumulative-bucket histogram over float64 samples, the
// shape Prometheus expects: counts[i] holds samples <= bounds[i] minus
// those in earlier buckets, and an implicit +Inf bucket catches the rest.
// It complements stats.Histogram (fixed-range integer buckets for
// simulated quantities) with the float ranges host-side telemetry needs
// — wall seconds, utilization fractions, reject rates.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, exclusive of +Inf
	counts []uint64  // len(bounds)+1; last is the +Inf bucket
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// snapshot returns the histogram state under its lock.
func (h *Histogram) snapshot() ([]uint64, float64, uint64) {
	h.mu.Lock()
	counts := make([]uint64, len(h.counts))
	copy(counts, h.counts)
	sum, count := h.sum, h.count
	h.mu.Unlock()
	return counts, sum, count
}

// metricKind labels a registry entry for the encoders.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// metric is one registry entry. Exactly one of counter/gauge/gaugeFn/hist
// is set, matching kind.
type metric struct {
	name, help string
	kind       metricKind

	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// Registry holds a campaign's metrics in registration order, so every
// encoding of a snapshot is deterministic. Registration panics on a
// duplicate or malformed name — both are programming errors, caught by the
// first test that touches the metric.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
	byName  map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// register adds one entry or panics on a conflict.
func (r *Registry) register(m *metric) {
	if !validMetricName(m.name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", m.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[m.name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", m.name))
	}
	r.byName[m.name] = m
	r.metrics = append(r.metrics, m)
}

// validMetricName enforces the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(&metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge computed by fn at snapshot time. fn must be
// safe to call from the HTTP scrape goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(&metric{name: name, help: help, kind: kindGauge, gaugeFn: fn})
}

// Histogram registers and returns a histogram with the given ascending
// bucket upper bounds (the +Inf bucket is implicit). It panics on empty or
// unsorted bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not strictly ascending", name))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	h := &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
	r.register(&metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// BucketSnapshot is one cumulative histogram bucket: the count of samples
// with value <= UpperBound. The +Inf bucket is represented by
// math.Inf(1).
type BucketSnapshot struct {
	UpperBound float64
	Cumulative uint64
}

// MetricSnapshot is one metric frozen at snapshot time.
type MetricSnapshot struct {
	Name string
	Help string
	Kind string

	// Value carries gauges; IntValue carries counters exactly (a float64
	// mantissa truncates above 2^53).
	Value    float64
	IntValue uint64

	// Histogram state; Buckets are cumulative in Prometheus style.
	Buckets []BucketSnapshot
	Sum     float64
	Count   uint64
}

// Snapshot freezes every metric in registration order.
func (r *Registry) Snapshot() []MetricSnapshot {
	r.mu.Lock()
	metrics := make([]*metric, len(r.metrics))
	copy(metrics, r.metrics)
	r.mu.Unlock()

	out := make([]MetricSnapshot, 0, len(metrics))
	for _, m := range metrics {
		s := MetricSnapshot{Name: m.name, Help: m.help, Kind: string(m.kind)}
		switch {
		case m.counter != nil:
			s.IntValue = m.counter.Value()
		case m.gauge != nil:
			s.Value = m.gauge.Value()
		case m.gaugeFn != nil:
			s.Value = m.gaugeFn()
		case m.hist != nil:
			counts, sum, count := m.hist.snapshot()
			s.Sum, s.Count = sum, count
			s.Buckets = make([]BucketSnapshot, len(counts))
			cum := uint64(0)
			for i, c := range counts {
				cum += c
				bound := math.Inf(1)
				if i < len(m.hist.bounds) {
					bound = m.hist.bounds[i]
				}
				s.Buckets[i] = BucketSnapshot{UpperBound: bound, Cumulative: cum}
			}
		}
		out = append(out, s)
	}
	return out
}
