package telemetry

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"portsim/internal/cpustack"
)

// ManifestSchema identifies the manifest format. Bump the suffix on any
// incompatible change; cmd/manifestcheck refuses unknown schemas.
const ManifestSchema = "portsim-manifest/v1"

// Cell outcomes.
const (
	OutcomeOK     = "ok"
	OutcomeFailed = "failed"
)

// ManifestCell records one experiment cell: the (machine, workload) pair,
// the hash of the exact machine configuration it ran, and what happened.
type ManifestCell struct {
	Workload   string `json:"workload"`
	Machine    string `json:"machine"`
	ConfigHash string `json:"config_hash"`
	// Outcome is OutcomeOK or OutcomeFailed.
	Outcome string `json:"outcome"`
	// MemoHit marks a cell satisfied from the runner's memo cache; its
	// cycles and instructions describe the original simulation and are
	// excluded from the totals.
	MemoHit bool `json:"memo_hit,omitempty"`
	// StoreHit marks a cell restored from the durable cell store (-store):
	// like a memo hit, it was not simulated in this run and its cycles and
	// instructions are excluded from the totals. At most one of MemoHit and
	// StoreHit is set.
	StoreHit    bool    `json:"store_hit,omitempty"`
	WallSeconds float64 `json:"wall_seconds"`
	Cycles      uint64  `json:"cycles"`
	Insts       uint64  `json:"insts"`
	Error       string  `json:"error,omitempty"`
	// CPIStack is the cell's cycle-accounting breakdown keyed by bucket
	// name (internal/cpustack), present only when the campaign ran with
	// accounting armed. Zero buckets are omitted; for an ok cell the
	// remaining buckets sum to exactly Cycles.
	CPIStack map[string]uint64 `json:"cpi_stack,omitempty"`
}

// ManifestTotals aggregates the cells.
type ManifestTotals struct {
	Cells    int `json:"cells"`
	Failed   int `json:"failed"`
	MemoHits int `json:"memo_hits"`
	// StoreHits counts cells restored from the durable store.
	StoreHits int `json:"store_hits,omitempty"`
	// SimCycles and SimInsts sum over simulated (non-memo-hit, successful)
	// cells only, matching the runner's own work accounting.
	SimCycles   uint64  `json:"sim_cycles"`
	SimInsts    uint64  `json:"sim_insts"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Manifest ties a campaign's outputs back to its exact inputs: seeds,
// workloads, per-cell configuration hashes and outcomes, and the paths of
// every artifact the run produced.
type Manifest struct {
	Schema    string `json:"schema"`
	CreatedAt string `json:"created_at"` // RFC 3339
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`

	// Command is the argv the campaign ran with, for reproduction.
	Command []string `json:"command,omitempty"`

	Seed        int64    `json:"seed"`
	Insts       uint64   `json:"insts"`
	Workloads   []string `json:"workloads"`
	Parallel    int      `json:"parallel"`
	Experiments []string `json:"experiments,omitempty"`

	// ConfigHash fingerprints the whole campaign: seed, budget, workloads
	// and every distinct machine-configuration hash that ran.
	ConfigHash string `json:"config_hash"`

	// Artifact paths, as written (possibly relative to the working
	// directory of the run).
	BenchJSON string   `json:"bench_json,omitempty"`
	TraceOut  string   `json:"trace_out,omitempty"`
	Bundles   []string `json:"bundles,omitempty"`

	// Store summarises the durable cell store when the campaign ran with
	// one (-store); nil otherwise.
	Store *ManifestStore `json:"store,omitempty"`

	// Arenas summarises the shared trace-arena registry when the campaign
	// replayed materialised traces; nil when arenas were disabled.
	Arenas *ManifestArenas `json:"arenas,omitempty"`

	Cells  []ManifestCell `json:"cells"`
	Totals ManifestTotals `json:"totals"`

	// CPIStack aggregates the per-cell breakdowns over simulated ok cells
	// (memo and store hits excluded, matching SimCycles accounting). It
	// lives outside ManifestTotals so the totals stay a comparable struct.
	CPIStack map[string]uint64 `json:"cpi_stack,omitempty"`
}

// ManifestStore records the durable cell store a campaign ran against and
// how it behaved: the resume economics (hits versus re-simulated misses)
// and every degradation the run survived.
type ManifestStore struct {
	// Dir is the store directory as given on the command line.
	Dir string `json:"dir"`
	// Resumed marks a campaign started with -resume.
	Resumed bool `json:"resumed,omitempty"`
	// Fault is the -inject-store descriptor when store faults were armed.
	Fault string `json:"fault,omitempty"`
	// Hits/Misses/Puts mirror the store's operation counters at campaign
	// end; Quarantined and PutFailures count the trouble it absorbed.
	Hits        uint64 `json:"hits"`
	Misses      uint64 `json:"misses"`
	Puts        uint64 `json:"puts"`
	PutFailures uint64 `json:"put_failures,omitempty"`
	Quarantined uint64 `json:"quarantined,omitempty"`
	// Degraded marks a store that shut itself off mid-campaign; the run
	// completed store-less.
	Degraded bool `json:"degraded,omitempty"`
}

// ManifestArenas records the shared trace-arena registry's behaviour over
// a campaign: how many traces were materialised (generate-once), how often
// cells replayed them, and how often the byte budget forced a cell back to
// live generation. Arenas never change results — every table is
// byte-identical with arenas on or off — so this section is purely a
// performance record.
type ManifestArenas struct {
	// BudgetBytes is the registry's configured ceiling (-arena-budget).
	BudgetBytes int64 `json:"budget_bytes"`
	// Count and Bytes describe residency at campaign end.
	Count int   `json:"count"`
	Bytes int64 `json:"bytes"`
	// Builds counts traces materialised; Hits counts acquisitions served
	// from an already-built arena.
	Builds uint64 `json:"builds"`
	Hits   uint64 `json:"hits"`
	// Fallbacks counts acquisitions that ran from live generation because
	// the budget had no room; Evictions counts idle arenas dropped to make
	// room.
	Fallbacks uint64 `json:"fallbacks,omitempty"`
	Evictions uint64 `json:"evictions,omitempty"`
}

// HashConfig fingerprints one machine-configuration JSON document. The
// short hex prefix keeps manifests and filenames readable; 48 bits is
// plenty for the tens of distinct configurations a campaign holds.
func HashConfig(cfgJSON []byte) string {
	sum := sha256.Sum256(cfgJSON)
	return hex.EncodeToString(sum[:6])
}

// Validate checks structural integrity: schema, timestamps, per-cell
// fields, and that the totals agree with the cells they summarise. It is
// the whole of cmd/manifestcheck.
func (m *Manifest) Validate() error {
	if m.Schema != ManifestSchema {
		return fmt.Errorf("manifest: schema %q, want %q", m.Schema, ManifestSchema)
	}
	if _, err := time.Parse(time.RFC3339, m.CreatedAt); err != nil {
		return fmt.Errorf("manifest: created_at %q is not RFC 3339: %v", m.CreatedAt, err)
	}
	if len(m.Workloads) == 0 {
		return fmt.Errorf("manifest: no workloads")
	}
	if m.Insts == 0 {
		return fmt.Errorf("manifest: zero instruction budget")
	}
	if m.Parallel < 1 {
		return fmt.Errorf("manifest: parallel %d, want >= 1", m.Parallel)
	}
	want := ManifestTotals{WallSeconds: m.Totals.WallSeconds}
	wantCPI := map[string]uint64{}
	for i, c := range m.Cells {
		where := fmt.Sprintf("manifest: cell %d (%s on %s)", i, c.Workload, c.Machine)
		if c.Workload == "" || c.Machine == "" {
			return fmt.Errorf("manifest: cell %d missing workload or machine name", i)
		}
		if c.ConfigHash == "" {
			return fmt.Errorf("%s: missing config_hash", where)
		}
		switch c.Outcome {
		case OutcomeOK:
			if c.Error != "" {
				return fmt.Errorf("%s: outcome ok but error %q", where, c.Error)
			}
		case OutcomeFailed:
			if c.Error == "" {
				return fmt.Errorf("%s: outcome failed without an error", where)
			}
			want.Failed++
		default:
			return fmt.Errorf("%s: unknown outcome %q", where, c.Outcome)
		}
		if c.WallSeconds < 0 {
			return fmt.Errorf("%s: negative wall_seconds %v", where, c.WallSeconds)
		}
		if c.MemoHit && c.StoreHit {
			return fmt.Errorf("%s: both memo_hit and store_hit set", where)
		}
		if c.CPIStack != nil {
			snap, err := cpustack.FromMap(c.CPIStack)
			if err != nil {
				return fmt.Errorf("%s: %v", where, err)
			}
			if c.Outcome == OutcomeOK {
				if err := snap.CheckConservation(c.Cycles); err != nil {
					return fmt.Errorf("%s: %v", where, err)
				}
			}
		}
		switch {
		case c.MemoHit:
			want.MemoHits++
		case c.StoreHit:
			want.StoreHits++
		case c.Outcome == OutcomeOK:
			want.SimCycles += c.Cycles
			want.SimInsts += c.Insts
			for name, v := range c.CPIStack {
				wantCPI[name] += v
			}
		}
		want.Cells++
	}
	if m.Totals != want {
		return fmt.Errorf("manifest: totals %+v disagree with cells (want %+v)", m.Totals, want)
	}
	// The aggregate breakdown must re-derive from the cells, and — paired
	// with the per-cell conservation above — sum to exactly SimCycles.
	if len(wantCPI) != len(m.CPIStack) {
		return fmt.Errorf("manifest: cpi_stack has %d buckets, cells sum to %d", len(m.CPIStack), len(wantCPI))
	}
	for name, v := range wantCPI {
		if m.CPIStack[name] != v {
			return fmt.Errorf("manifest: cpi_stack[%s] = %d disagrees with cells (want %d)",
				name, m.CPIStack[name], v)
		}
	}
	if m.Totals.WallSeconds < 0 {
		return fmt.Errorf("manifest: negative total wall_seconds %v", m.Totals.WallSeconds)
	}
	if m.ConfigHash == "" {
		return fmt.Errorf("manifest: missing config_hash")
	}
	if m.Store != nil {
		if m.Store.Dir == "" {
			return fmt.Errorf("manifest: store summary without a directory")
		}
		if uint64(m.Totals.StoreHits) > m.Store.Hits {
			return fmt.Errorf("manifest: %d store-hit cells but the store reports only %d hits",
				m.Totals.StoreHits, m.Store.Hits)
		}
	} else if m.Totals.StoreHits != 0 {
		return fmt.Errorf("manifest: %d store-hit cells without a store summary", m.Totals.StoreHits)
	}
	if a := m.Arenas; a != nil {
		if a.BudgetBytes <= 0 {
			return fmt.Errorf("manifest: arena summary with budget %d, want > 0", a.BudgetBytes)
		}
		if a.Count < 0 || a.Bytes < 0 {
			return fmt.Errorf("manifest: negative arena residency (count %d, bytes %d)", a.Count, a.Bytes)
		}
		if a.Bytes > a.BudgetBytes {
			return fmt.Errorf("manifest: arena residency %d bytes exceeds budget %d", a.Bytes, a.BudgetBytes)
		}
		if a.Count > 0 && a.Bytes == 0 {
			return fmt.Errorf("manifest: %d resident arenas occupying zero bytes", a.Count)
		}
		if uint64(a.Count) > a.Builds {
			return fmt.Errorf("manifest: %d resident arenas but only %d builds", a.Count, a.Builds)
		}
	}
	return nil
}

// WriteManifest validates and writes the manifest as indented JSON.
func WriteManifest(path string, m *Manifest) error {
	if err := m.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadManifest parses and validates a manifest file.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("manifest: %s: %v", path, err)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &m, nil
}
