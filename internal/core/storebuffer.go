package core

import "fmt"

// maxChunkBytes bounds the port width the store buffer supports; entries
// carry fixed-size arrays to keep the simulator allocation-free.
const maxChunkBytes = 64

// SBEntry is one store-buffer entry: an aligned chunk with a byte mask of
// the written bytes and, optionally, the written data (tests run the buffer
// with data to prove byte-exactness; the timing simulator runs address-only).
type SBEntry struct {
	ChunkAddr uint64
	// Mask has bit i set when byte i of the chunk has been written.
	Mask uint64
	// Data holds the written bytes at their chunk offsets (valid where
	// Mask is set) when the buffer runs in data-carrying mode.
	Data [maxChunkBytes]byte
	// issued marks that the entry's port write has been sent to the
	// cache; it still occupies the buffer until drainDone.
	issued bool
	// drainDone is the cycle the entry's cache write completes (valid
	// once issued).
	drainDone uint64
	// seq is the insertion sequence number, for age ordering.
	seq uint64
	// insertedAt is the cycle the entry was created, for the combining
	// hold policy.
	insertedAt uint64
}

// StoreBuffer is the decoupling buffer between commit and the cache port.
// Entries are drained oldest-first; with combining enabled, at most one
// entry exists per chunk and later stores to the chunk merge into it, so one
// port write retires several program stores.
type StoreBuffer struct {
	chunkBytes uint64
	capacity   int
	combining  bool
	entries    []SBEntry // ordered oldest first
	expired    []SBEntry // scratch returned by Expire, reused across cycles
	nextSeq    uint64

	inserts, combined, drains, forwards, conflicts uint64
	occupancySamples, occupancySum                 uint64
}

// NewStoreBuffer returns a store buffer of the given capacity for
// chunkBytes-wide ports. It panics on invalid sizing, which indicates a
// configuration-validation bug upstream.
func NewStoreBuffer(capacity, chunkBytes int, combining bool) *StoreBuffer {
	if capacity < 1 {
		panic("core: store buffer capacity must be positive")
	}
	if chunkBytes < 8 || chunkBytes > maxChunkBytes || chunkBytes&(chunkBytes-1) != 0 {
		panic(fmt.Sprintf("core: unsupported chunk width %d", chunkBytes))
	}
	return &StoreBuffer{
		chunkBytes: uint64(chunkBytes),
		capacity:   capacity,
		combining:  combining,
		entries:    make([]SBEntry, 0, capacity),
		expired:    make([]SBEntry, 0, capacity),
	}
}

// Reset empties the buffer and zeroes the statistics, restoring the
// just-constructed state while keeping the entry storage.
func (b *StoreBuffer) Reset() {
	b.entries = b.entries[:0]
	b.expired = b.expired[:0]
	b.nextSeq = 0
	b.inserts, b.combined, b.drains, b.forwards, b.conflicts = 0, 0, 0, 0, 0
	b.occupancySamples, b.occupancySum = 0, 0
}

// ChunkAddr returns addr rounded down to its aligned chunk.
func (b *StoreBuffer) ChunkAddr(addr uint64) uint64 { return addr &^ (b.chunkBytes - 1) }

func maskFor(offset uint64, size int) uint64 {
	return ((uint64(1) << size) - 1) << offset
}

// CanAccept reports whether a store of size bytes at addr can enter the
// buffer this cycle: either it combines into an existing un-issued entry for
// its chunk, or a free slot exists.
func (b *StoreBuffer) CanAccept(addr uint64, size int) bool {
	if b.combining {
		chunk := b.ChunkAddr(addr)
		for i := range b.entries {
			if b.entries[i].ChunkAddr == chunk && !b.entries[i].issued {
				return true
			}
		}
	}
	return len(b.entries) < b.capacity
}

// Insert adds a committed store to the buffer. data may be nil (timing-only
// mode) or exactly size bytes (data-carrying mode). It returns whether the
// store was merged into an existing entry. Callers must check CanAccept
// first; Insert panics when the buffer cannot take the store, because a
// lost store would silently corrupt the simulation.
func (b *StoreBuffer) Insert(now, addr uint64, size int, data []byte) (combined bool) {
	if size <= 0 || size > 8 {
		panic(fmt.Sprintf("core: store size %d unsupported", size))
	}
	if data != nil && len(data) != size {
		panic("core: data length disagrees with store size")
	}
	chunk := b.ChunkAddr(addr)
	offset := addr - chunk //portlint:ignore cyclemath chunk is addr with low bits masked off, so chunk <= addr
	mask := maskFor(offset, size)
	b.inserts++
	if b.combining {
		for i := range b.entries {
			e := &b.entries[i]
			if e.ChunkAddr == chunk && !e.issued {
				e.Mask |= mask
				if data != nil {
					copy(e.Data[offset:], data)
				}
				b.combined++
				return true
			}
		}
	}
	if len(b.entries) >= b.capacity {
		panic("core: Insert on a full store buffer; call CanAccept first")
	}
	var e SBEntry
	e.ChunkAddr = chunk
	e.Mask = mask
	e.insertedAt = now
	e.seq = b.nextSeq
	b.nextSeq++
	if data != nil {
		copy(e.Data[offset:], data)
	}
	b.entries = append(b.entries, e) //portlint:ignore hotpathclosure entries has cap=capacity from construction and the full-buffer panic above keeps len below it, so append never grows
	return false
}

// Probe checks a load of size bytes at addr against every occupying entry
// (including issued-but-incomplete ones, whose data is not yet in the
// cache). It returns:
//
//   - forward=true when the youngest matching entry covers every byte of the
//     load: the load can be satisfied from the buffer without a port access.
//   - conflict=true when some entry overlaps the load but does not fully
//     cover it: the load must wait for the entry to drain.
//
// With combining enabled there is at most one un-issued entry per chunk, but
// issued entries for the same chunk may coexist with it; the youngest match
// wins, which is the correct per-location ordering because younger entries
// hold the newer bytes.
func (b *StoreBuffer) Probe(addr uint64, size int) (forward, conflict bool) {
	chunk := b.ChunkAddr(addr)
	offset := addr - chunk //portlint:ignore cyclemath chunk is addr with low bits masked off, so chunk <= addr
	mask := maskFor(offset, size)
	// Scan youngest-first so the newest matching entry decides.
	for i := len(b.entries) - 1; i >= 0; i-- {
		e := &b.entries[i]
		if e.ChunkAddr != chunk || e.Mask&mask == 0 {
			continue
		}
		if e.Mask&mask == mask {
			b.forwards++
			return true, false
		}
		b.conflicts++
		return false, true
	}
	return false, false
}

// ReadForward copies the buffered bytes for a load previously approved by
// Probe (forward=true) out of the youngest covering entry. It is only
// meaningful in data-carrying mode and returns false if no covering entry
// exists (the caller raced a drain — a bug Probe/Drain sequencing prevents).
func (b *StoreBuffer) ReadForward(addr uint64, p []byte) bool {
	chunk := b.ChunkAddr(addr)
	offset := addr - chunk //portlint:ignore cyclemath chunk is addr with low bits masked off, so chunk <= addr
	mask := maskFor(offset, len(p))
	for i := len(b.entries) - 1; i >= 0; i-- {
		e := &b.entries[i]
		if e.ChunkAddr == chunk && e.Mask&mask == mask {
			copy(p, e.Data[offset:offset+uint64(len(p))])
			return true
		}
	}
	return false
}

// NextDrain returns the oldest un-issued entry whose chunk has no older
// write still in flight, or nil when none is ready. The same-chunk guard
// preserves per-location ordering: without it, a younger store that hits in
// the cache could complete before an older store to the same chunk that
// missed, leaving the older bytes as the final value. The returned pointer
// is valid until the next mutation.
func (b *StoreBuffer) NextDrain() *SBEntry {
	for i := range b.entries {
		e := &b.entries[i]
		if e.issued {
			continue
		}
		blocked := false
		for j := 0; j < i; j++ {
			if b.entries[j].ChunkAddr == e.ChunkAddr {
				blocked = true
				break
			}
		}
		if !blocked {
			return e
		}
	}
	return nil
}

// MarkIssued records that the entry's port write was sent at some cycle and
// completes at done. The entry keeps occupying the buffer until Expire
// removes it at or after done.
func (b *StoreBuffer) MarkIssued(e *SBEntry, done uint64) {
	e.issued = true
	e.drainDone = done
	b.drains++
}

// Age returns how many cycles the entry has been buffered.
func (e *SBEntry) Age(now uint64) uint64 {
	if now < e.insertedAt {
		return 0
	}
	return now - e.insertedAt
}

// Expire removes issued entries whose cache writes have completed by cycle
// now, returning them (oldest first) so the caller can apply their data in
// data-carrying mode. The returned slice aliases internal scratch that the
// next Expire call overwrites: consume it before calling Expire again.
//
//portlint:hotpath
func (b *StoreBuffer) Expire(now uint64) []SBEntry {
	done := b.expired[:0]
	kept := b.entries[:0]
	for i := range b.entries {
		e := b.entries[i]
		if e.issued && e.drainDone <= now {
			done = append(done, e)
		} else {
			kept = append(kept, e)
		}
	}
	b.entries = kept
	b.expired = done
	return done
}

// SampleOccupancy records the current occupancy for the utilisation stats.
func (b *StoreBuffer) SampleOccupancy() {
	b.occupancySamples++
	b.occupancySum += uint64(len(b.entries))
}

// Len returns the number of occupying entries.
func (b *StoreBuffer) Len() int { return len(b.entries) }

// Cap returns the buffer capacity.
func (b *StoreBuffer) Cap() int { return b.capacity }

// Inserts, Combined, Drains, Forwards and Conflicts return statistics.
// StoresPerDrain is the headline combining metric: program stores retired
// per port write.
func (b *StoreBuffer) Inserts() uint64   { return b.inserts }
func (b *StoreBuffer) Combined() uint64  { return b.combined }
func (b *StoreBuffer) Drains() uint64    { return b.drains }
func (b *StoreBuffer) Forwards() uint64  { return b.forwards }
func (b *StoreBuffer) Conflicts() uint64 { return b.conflicts }

// StoresPerDrain returns inserts/drains, zero when nothing drained yet.
func (b *StoreBuffer) StoresPerDrain() float64 {
	if b.drains == 0 {
		return 0
	}
	return float64(b.inserts) / float64(b.drains)
}

// MeanOccupancy returns the average sampled occupancy.
func (b *StoreBuffer) MeanOccupancy() float64 {
	if b.occupancySamples == 0 {
		return 0
	}
	return float64(b.occupancySum) / float64(b.occupancySamples)
}
