package core

import "fmt"

// maxChunkBytes bounds the port width the store buffer supports; entries
// carry fixed-size arrays to keep the simulator allocation-free.
const maxChunkBytes = 64

// combineHoldCycles is how long a young entry is held back from draining to
// give later stores a chance to combine into it. Holding is only worthwhile
// while the buffer has headroom; see MemPort.drainStores and HoldActive.
const combineHoldCycles = 6

// SBEntry is a materialized view of one store-buffer entry: an aligned chunk
// with a byte mask of the written bytes and, optionally, the written data
// (tests run the buffer with data to prove byte-exactness; the timing
// simulator runs address-only). Expire returns entries in this form; while
// an entry occupies the buffer it is addressed by index through the At
// accessors instead.
type SBEntry struct {
	ChunkAddr uint64
	// Mask has bit i set when byte i of the chunk has been written.
	Mask uint64
	// Data holds the written bytes at their chunk offsets (valid where
	// Mask is set) when the buffer runs in data-carrying mode.
	Data [maxChunkBytes]byte
}

// StoreBuffer is the decoupling buffer between commit and the cache port.
// Entries are drained oldest-first; with combining enabled, at most one
// entry exists per chunk and later stores to the chunk merge into it, so one
// port write retires several program stores.
//
// Entry state lives in parallel arrays (struct-of-arrays), oldest first at
// the low indices: the drain-ordering and probe scans touch only the one or
// two fields they test, so the common walks (chunk address + issued flag)
// stay in dense cache lines instead of striding over 90-byte records. The
// 64-byte data images sit in their own array and are only touched by the
// data-carrying test mode.
type StoreBuffer struct {
	chunkBytes uint64
	capacity   int
	combining  bool

	// Parallel per-entry state; index i < n describes occupying entry i.
	// Slices are allocated at full capacity up front so Insert and the
	// Expire compaction never grow anything.
	chunkAddr  []uint64
	mask       []uint64
	seq        []uint64
	insertedAt []uint64
	drainDone  []uint64 // valid once issued
	issued     []bool
	data       [][maxChunkBytes]byte

	n       int
	nextSeq uint64

	// nextExpiry caches the minimum drainDone over issued entries
	// (NeverEvent when none are issued) so Expire can prove "nothing to
	// remove" without walking the buffer, and so the event-driven clock
	// can ask when the next completion lands.
	nextExpiry uint64

	// drainCand memoises NextDrain's answer between mutations: the scan
	// reads only chunkAddr, issued and n, so the result stays valid until
	// Insert, MarkIssued, Expire compaction or Reset touches them. The
	// arbiter and the event-driven clock both ask every cycle while the
	// buffer sits waiting, which without the memo is a quadratic rescan.
	drainCand      int
	drainCandValid bool

	expired []SBEntry // scratch returned by Expire, reused across cycles

	inserts, combined, drains, forwards, conflicts uint64
	occupancySamples, occupancySum                 uint64
}

// NewStoreBuffer returns a store buffer of the given capacity for
// chunkBytes-wide ports. It panics on invalid sizing, which indicates a
// configuration-validation bug upstream.
func NewStoreBuffer(capacity, chunkBytes int, combining bool) *StoreBuffer {
	if capacity < 1 {
		panic("core: store buffer capacity must be positive")
	}
	if chunkBytes < 8 || chunkBytes > maxChunkBytes || chunkBytes&(chunkBytes-1) != 0 {
		panic(fmt.Sprintf("core: unsupported chunk width %d", chunkBytes))
	}
	return &StoreBuffer{
		chunkBytes: uint64(chunkBytes),
		capacity:   capacity,
		combining:  combining,
		chunkAddr:  make([]uint64, capacity),
		mask:       make([]uint64, capacity),
		seq:        make([]uint64, capacity),
		insertedAt: make([]uint64, capacity),
		drainDone:  make([]uint64, capacity),
		issued:     make([]bool, capacity),
		data:       make([][maxChunkBytes]byte, capacity),
		nextExpiry: NeverEvent,
		expired:    make([]SBEntry, capacity),
	}
}

// Reset empties the buffer and zeroes the statistics, restoring the
// just-constructed state while keeping the entry storage.
func (b *StoreBuffer) Reset() {
	b.n = 0
	b.nextSeq = 0
	b.nextExpiry = NeverEvent
	b.drainCandValid = false
	b.inserts, b.combined, b.drains, b.forwards, b.conflicts = 0, 0, 0, 0, 0
	b.occupancySamples, b.occupancySum = 0, 0
}

// ChunkAddr returns addr rounded down to its aligned chunk.
func (b *StoreBuffer) ChunkAddr(addr uint64) uint64 { return addr &^ (b.chunkBytes - 1) }

func maskFor(offset uint64, size int) uint64 {
	return ((uint64(1) << size) - 1) << offset
}

// CanAccept reports whether a store of size bytes at addr can enter the
// buffer this cycle: either it combines into an existing un-issued entry for
// its chunk, or a free slot exists.
func (b *StoreBuffer) CanAccept(addr uint64, size int) bool {
	if b.combining {
		chunk := b.ChunkAddr(addr)
		for i := 0; i < b.n; i++ {
			if b.chunkAddr[i] == chunk && !b.issued[i] {
				return true
			}
		}
	}
	return b.n < b.capacity
}

// Insert adds a committed store to the buffer. data may be nil (timing-only
// mode) or exactly size bytes (data-carrying mode). It returns whether the
// store was merged into an existing entry. Callers must check CanAccept
// first; Insert panics when the buffer cannot take the store, because a
// lost store would silently corrupt the simulation.
func (b *StoreBuffer) Insert(now, addr uint64, size int, data []byte) (combined bool) {
	if size <= 0 || size > 8 {
		panic(fmt.Sprintf("core: store size %d unsupported", size))
	}
	if data != nil && len(data) != size {
		panic("core: data length disagrees with store size")
	}
	chunk := b.ChunkAddr(addr)
	offset := addr - chunk //portlint:ignore cyclemath chunk is addr with low bits masked off, so chunk <= addr
	mask := maskFor(offset, size)
	b.inserts++
	if b.combining {
		for i := 0; i < b.n; i++ {
			if b.chunkAddr[i] == chunk && !b.issued[i] {
				b.mask[i] |= mask
				if data != nil {
					copy(b.data[i][offset:], data)
				}
				b.combined++
				return true
			}
		}
	}
	if b.n >= b.capacity {
		panic("core: Insert on a full store buffer; call CanAccept first")
	}
	i := b.n
	b.n++
	b.drainCandValid = false
	b.chunkAddr[i] = chunk
	b.mask[i] = mask
	b.seq[i] = b.nextSeq
	b.nextSeq++
	b.insertedAt[i] = now
	b.issued[i] = false
	if data != nil {
		b.data[i] = [maxChunkBytes]byte{}
		copy(b.data[i][offset:], data)
	}
	return false
}

// Probe checks a load of size bytes at addr against every occupying entry
// (including issued-but-incomplete ones, whose data is not yet in the
// cache). It returns:
//
//   - forward=true when the youngest matching entry covers every byte of the
//     load: the load can be satisfied from the buffer without a port access.
//   - conflict=true when some entry overlaps the load but does not fully
//     cover it: the load must wait for the entry to drain.
//
// With combining enabled there is at most one un-issued entry per chunk, but
// issued entries for the same chunk may coexist with it; the youngest match
// wins, which is the correct per-location ordering because younger entries
// hold the newer bytes.
func (b *StoreBuffer) Probe(addr uint64, size int) (forward, conflict bool) {
	chunk := b.ChunkAddr(addr)
	offset := addr - chunk //portlint:ignore cyclemath chunk is addr with low bits masked off, so chunk <= addr
	mask := maskFor(offset, size)
	// Scan youngest-first so the newest matching entry decides.
	for i := b.n - 1; i >= 0; i-- {
		if b.chunkAddr[i] != chunk || b.mask[i]&mask == 0 {
			continue
		}
		if b.mask[i]&mask == mask {
			b.forwards++
			return true, false
		}
		b.conflicts++
		return false, true
	}
	return false, false
}

// ReadForward copies the buffered bytes for a load previously approved by
// Probe (forward=true) out of the youngest covering entry. It is only
// meaningful in data-carrying mode and returns false if no covering entry
// exists (the caller raced a drain — a bug Probe/Drain sequencing prevents).
func (b *StoreBuffer) ReadForward(addr uint64, p []byte) bool {
	chunk := b.ChunkAddr(addr)
	offset := addr - chunk //portlint:ignore cyclemath chunk is addr with low bits masked off, so chunk <= addr
	mask := maskFor(offset, len(p))
	for i := b.n - 1; i >= 0; i-- {
		if b.chunkAddr[i] == chunk && b.mask[i]&mask == mask {
			copy(p, b.data[i][offset:offset+uint64(len(p))])
			return true
		}
	}
	return false
}

// NextDrain returns the index of the oldest un-issued entry whose chunk has
// no older write still in flight, or -1 when none is ready. The same-chunk
// guard preserves per-location ordering: without it, a younger store that
// hits in the cache could complete before an older store to the same chunk
// that missed, leaving the older bytes as the final value. The returned
// index is valid until the next mutation.
func (b *StoreBuffer) NextDrain() int {
	if b.drainCandValid {
		return b.drainCand
	}
	cand := -1
	for i := 0; i < b.n; i++ {
		if b.issued[i] {
			continue
		}
		blocked := false
		for j := 0; j < i; j++ {
			if b.chunkAddr[j] == b.chunkAddr[i] {
				blocked = true
				break
			}
		}
		if !blocked {
			cand = i
			break
		}
	}
	b.drainCand = cand
	b.drainCandValid = true
	return cand
}

// MarkIssued records that entry i's port write was sent at some cycle and
// completes at done. The entry keeps occupying the buffer until Expire
// removes it at or after done.
func (b *StoreBuffer) MarkIssued(i int, done uint64) {
	b.issued[i] = true
	b.drainCandValid = false
	b.drainDone[i] = done
	if done < b.nextExpiry {
		b.nextExpiry = done
	}
	b.drains++
}

// ChunkAddrAt, MaskAt and SeqAt expose occupying entry i's identity for the
// port arbiter and its diagnostics.
func (b *StoreBuffer) ChunkAddrAt(i int) uint64 { return b.chunkAddr[i] }
func (b *StoreBuffer) MaskAt(i int) uint64      { return b.mask[i] }
func (b *StoreBuffer) SeqAt(i int) uint64       { return b.seq[i] }

// HoldActive reports whether the combining hold policy keeps entry i out of
// drain arbitration at cycle now: with combining on and the buffer no more
// than a quarter full, a young entry waits up to combineHoldCycles for later
// stores to merge into it before competing for the port.
func (b *StoreBuffer) HoldActive(i int, now uint64) bool {
	if !b.combining || b.n > b.capacity/4 {
		return false
	}
	return now < b.insertedAt[i]+combineHoldCycles
}

// NextExpiry returns the cycle the earliest in-flight drain completes, or
// NeverEvent when nothing is issued. Expiry frees a buffer slot (and, in
// data-carrying mode, retires bytes to the cache), so it is a clock event.
func (b *StoreBuffer) NextExpiry() uint64 { return b.nextExpiry }

// NextDrainEligible returns the first cycle at or after now at which the
// drain candidate (NextDrain) is willing to compete for a port slot:
// now itself when one is ready, the end of its combining hold when the hold
// policy is deferring it, or NeverEvent when nothing awaits drain. Whether
// the port actually grants the slot that cycle is the arbiter's business.
func (b *StoreBuffer) NextDrainEligible(now uint64) uint64 {
	i := b.NextDrain()
	if i < 0 {
		return NeverEvent
	}
	if b.HoldActive(i, now) {
		return b.insertedAt[i] + combineHoldCycles
	}
	return now
}

// LatestDrainDone returns the largest completion cycle over issued entries,
// or 0 when none are in flight. End-of-run draining uses it to fast-forward
// past every write already on its way to the cache.
func (b *StoreBuffer) LatestDrainDone() uint64 {
	var latest uint64
	for i := 0; i < b.n; i++ {
		if b.issued[i] && b.drainDone[i] > latest {
			latest = b.drainDone[i]
		}
	}
	return latest
}

// Expire removes issued entries whose cache writes have completed by cycle
// now, returning them (oldest first) so the caller can apply their data in
// data-carrying mode. The returned slice aliases internal scratch that the
// next Expire call overwrites: consume it before calling Expire again.
//
//portlint:hotpath
func (b *StoreBuffer) Expire(now uint64) []SBEntry {
	if now < b.nextExpiry {
		// No issued entry has completed yet; the buffer is untouched.
		return b.expired[:0]
	}
	k := 0
	w := 0
	next := NeverEvent
	for i := 0; i < b.n; i++ {
		if b.issued[i] && b.drainDone[i] <= now {
			out := &b.expired[k]
			out.ChunkAddr = b.chunkAddr[i]
			out.Mask = b.mask[i]
			out.Data = b.data[i]
			k++
			continue
		}
		if b.issued[i] && b.drainDone[i] < next {
			next = b.drainDone[i]
		}
		if w != i {
			b.chunkAddr[w] = b.chunkAddr[i]
			b.mask[w] = b.mask[i]
			b.seq[w] = b.seq[i]
			b.insertedAt[w] = b.insertedAt[i]
			b.drainDone[w] = b.drainDone[i]
			b.issued[w] = b.issued[i]
			b.data[w] = b.data[i]
		}
		w++
	}
	b.n = w
	b.nextExpiry = next
	b.drainCandValid = false
	return b.expired[:k]
}

// SampleOccupancy records the current occupancy for the utilisation stats.
func (b *StoreBuffer) SampleOccupancy() {
	b.occupancySamples++
	b.occupancySum += uint64(b.n)
}

// SkipOccupancySamples accounts for samples cycles of unchanged occupancy in
// one step, so a fast-forwarded clock produces the same utilisation stats as
// ticking through the gap.
func (b *StoreBuffer) SkipOccupancySamples(samples uint64) {
	b.occupancySamples += samples
	b.occupancySum += uint64(b.n) * samples
}

// Len returns the number of occupying entries.
func (b *StoreBuffer) Len() int { return b.n }

// Cap returns the buffer capacity.
func (b *StoreBuffer) Cap() int { return b.capacity }

// Inserts, Combined, Drains, Forwards and Conflicts return statistics.
// StoresPerDrain is the headline combining metric: program stores retired
// per port write.
func (b *StoreBuffer) Inserts() uint64   { return b.inserts }
func (b *StoreBuffer) Combined() uint64  { return b.combined }
func (b *StoreBuffer) Drains() uint64    { return b.drains }
func (b *StoreBuffer) Forwards() uint64  { return b.forwards }
func (b *StoreBuffer) Conflicts() uint64 { return b.conflicts }

// StoresPerDrain returns inserts/drains, zero when nothing drained yet.
func (b *StoreBuffer) StoresPerDrain() float64 {
	if b.drains == 0 {
		return 0
	}
	return float64(b.inserts) / float64(b.drains)
}

// MeanOccupancy returns the average sampled occupancy.
func (b *StoreBuffer) MeanOccupancy() float64 {
	if b.occupancySamples == 0 {
		return 0
	}
	return float64(b.occupancySum) / float64(b.occupancySamples)
}
