package core

import (
	"fmt"

	"portsim/internal/config"
	"portsim/internal/diag"
	"portsim/internal/mem"
	"portsim/internal/stats"
)

// LoadResult reports the outcome of offering a load to the memory port.
type LoadResult struct {
	// Accepted is false when the load could not start this cycle (all
	// ports granted, MSHRs exhausted, or a partial store-buffer overlap);
	// the issue logic retries on a later cycle.
	Accepted bool
	// Ready is the cycle the load's data is available (valid if Accepted).
	Ready uint64
	// Source tells where the data came from, for statistics.
	Source LoadSource
}

// LoadSource identifies the structure that satisfied a load.
type LoadSource uint8

// Load data sources.
const (
	// SourceCache means the load consumed a port and accessed the cache.
	SourceCache LoadSource = iota
	// SourceLineBuffer means a load-all buffer supplied the data; no port
	// was consumed.
	SourceLineBuffer
	// SourceStoreBuffer means the store buffer forwarded the data; no
	// port was consumed.
	SourceStoreBuffer
)

// String returns a short name for the source.
func (s LoadSource) String() string {
	switch s {
	case SourceCache:
		return "cache"
	case SourceLineBuffer:
		return "line-buffer"
	case SourceStoreBuffer:
		return "store-buffer"
	}
	return fmt.Sprintf("source(%d)", uint8(s))
}

// RejectReason classifies why a load was refused, for the port-pressure
// statistics that motivate the paper.
type RejectReason uint8

// Load rejection reasons.
const (
	// RejectNone: the load was accepted.
	RejectNone RejectReason = iota
	// RejectPortBusy: every port was already granted this cycle.
	RejectPortBusy
	// RejectMSHR: the cache could not accept another outstanding miss.
	RejectMSHR
	// RejectStoreConflict: a store-buffer entry partially overlaps the
	// load; it must wait for the store to reach the cache.
	RejectStoreConflict
	// RejectBankConflict: the access's bank already served another access
	// this cycle (banked configurations only).
	RejectBankConflict
)

// MemPort is the data-cache port subsystem: it owns the port grants of the
// current cycle, the load-all line buffers, and the combining store buffer,
// and it is the only path by which the core reaches the L1 data cache. The
// simulated core calls, per cycle:
//
//	BeginCycle(now)          // once, at the top of the cycle
//	TryLoad(now, addr, size) // for each load selected to issue
//	TryCommitStore(...)      // for each committing store
//	EndCycle(now)            // once; drains stores into leftover port slots
type MemPort struct {
	cfg  config.Ports
	sys  *mem.System
	lbs  *LineBufferSet
	sb   *StoreBuffer
	wide bool // port wider than the largest scalar access

	grants int // ports consumed this cycle

	// Prefetch state: line addresses queued by load misses, issued into
	// idle slots with the lowest priority. The queue is a fixed-capacity
	// ring (pfHead oldest, pfCount occupancy); candidates beyond its
	// capacity are dropped, as before.
	prefetchQueue   [maxPrefetchQueue]uint64
	pfHead, pfCount int
	prefetched      map[uint64]bool
	prefetches      uint64
	usefulPrefetch  uint64

	// Banking state (cfg.Banks > 1): the data array is line-interleaved
	// into single-ported banks; up to one access proceeds per bank per
	// cycle, and refill debt is owed per bank.
	banked        bool
	bankBusy      []bool
	bankDebt      []int
	bankMask      uint64
	bankConflicts uint64

	// Refill bandwidth: a line fill (and a dirty victim's read-out) must
	// move LineBytes through the FillBytesPerCycle-wide fill path,
	// occupying one port for LineBytes/FillBytesPerCycle cycles starting
	// when the fill arrives. The fill path is a fixed property of the
	// arrays, shared by every port arrangement, so extra or wider CPU
	// ports do not change the per-miss cost — only how much other traffic
	// it displaces.
	pendingRefills []refillWindow
	refillDebt     int
	refillCycles   uint64

	// Statistics.
	loadPortAccesses  uint64
	storePortAccesses uint64
	loadsBySource     [3]uint64
	rejects           [5]uint64
	cycles            uint64
	busyGrants        uint64 // total grants, for utilisation
	grantHist         *stats.Histogram

	// rec is the optional flight recorder (nil when disabled); it sees
	// store-drain grants, the port-side events the core cannot observe.
	rec *diag.Recorder
}

// refillWindow is a scheduled array write: starting at `at`, the port (or,
// when banked, the line's bank) owes `cycles` of occupancy.
type refillWindow struct {
	at     uint64
	cycles int
	bank   int
}

// SlotsPerCycle is the peak accesses per cycle a port arrangement allows:
// one per bank when banked, otherwise one per port. Exported for the
// telemetry layer, which renders one trace lane per slot and normalises
// utilization by it — the same divisor Utilisation uses.
func SlotsPerCycle(cfg config.Ports) int {
	if cfg.Banks > 1 {
		return cfg.Banks
	}
	return cfg.Count
}

// NewMemPort builds the port subsystem over a memory hierarchy. The machine
// configuration must already be validated.
func NewMemPort(cfg config.Ports, sys *mem.System) *MemPort {
	p := &MemPort{
		cfg:       cfg,
		sys:       sys,
		lbs:       NewLineBufferSet(cfg.LineBuffers, cfg.WidthBytes),
		sb:        NewStoreBuffer(cfg.StoreBufferEntries, cfg.WidthBytes, cfg.StoreCombining),
		wide:      cfg.WidthBytes > 8,
		grantHist: stats.NewHistogram(SlotsPerCycle(cfg) + 1),
	}
	if cfg.Banks > 1 {
		p.banked = true
		p.bankBusy = make([]bool, cfg.Banks)
		p.bankDebt = make([]int, cfg.Banks)
		p.bankMask = uint64(cfg.Banks - 1)
	}
	if cfg.PrefetchNextLine {
		p.prefetched = make(map[uint64]bool)
	}
	// A replaced or invalidated cache line must take its latched chunks
	// with it, or the line buffers would serve data the cache no longer
	// owns.
	sys.L1D.OnEvict = func(lineAddr uint64) {
		p.lbs.InvalidateLine(lineAddr, sys.L1D.Geom().LineBytes)
	}
	return p
}

// SetRecorder installs (or, with nil, removes) a flight recorder for
// port-side events.
func (p *MemPort) SetRecorder(rec *diag.Recorder) { p.rec = rec }

// Reset restores the port subsystem — grants, prefetch state, banking and
// refill debts, store buffer, line buffers, statistics — to its
// just-constructed state, reusing every backing structure. Part of the
// pooled-simulation path; the configuration (and the L1D eviction hook) is
// retained.
func (p *MemPort) Reset() {
	p.grants = 0
	p.pfHead, p.pfCount = 0, 0
	if p.prefetched != nil {
		clear(p.prefetched)
	}
	p.prefetches, p.usefulPrefetch = 0, 0
	for i := range p.bankBusy {
		p.bankBusy[i] = false
		p.bankDebt[i] = 0
	}
	p.bankConflicts = 0
	p.pendingRefills = p.pendingRefills[:0]
	p.refillDebt = 0
	p.refillCycles = 0
	p.loadPortAccesses, p.storePortAccesses = 0, 0
	p.loadsBySource = [3]uint64{}
	p.rejects = [5]uint64{}
	p.cycles, p.busyGrants = 0, 0
	p.grantHist.Reset()
	p.lbs.Reset()
	p.sb.Reset()
	p.rec = nil
}

// LineBuffers exposes the load-all buffer set (statistics, tests).
func (p *MemPort) LineBuffers() *LineBufferSet { return p.lbs }

// StoreBuffer exposes the store buffer (statistics, tests).
func (p *MemPort) StoreBuffer() *StoreBuffer { return p.sb }

// BeginCycle starts a new cycle: port grants reset, arrived refills claim
// their array-write bandwidth, and completed store drains leave the buffer.
// Under the stores-first policy the store buffer drains here, ahead of the
// cycle's loads.
//
//portlint:hotpath
func (p *MemPort) BeginCycle(now uint64) {
	p.grants = 0
	p.cycles++
	// Refills whose data has arrived add to the port debt; the debt is
	// paid before any load or store may use the port (array writes cannot
	// be deferred indefinitely in this model).
	kept := p.pendingRefills[:0]
	for _, r := range p.pendingRefills {
		if r.at <= now {
			if p.banked {
				p.bankDebt[r.bank] += r.cycles
			} else {
				p.refillDebt += r.cycles
			}
		} else {
			kept = append(kept, r)
		}
	}
	p.pendingRefills = kept
	if p.banked {
		for i := range p.bankBusy {
			p.bankBusy[i] = false
			if p.bankDebt[i] > 0 {
				p.bankDebt[i]--
				p.bankBusy[i] = true
				p.grants++
				p.busyGrants++
				p.refillCycles++
			}
		}
	} else if p.refillDebt > 0 {
		pay := p.refillDebt
		if pay > p.cfg.Count {
			pay = p.cfg.Count
		}
		p.refillDebt -= pay
		p.grants += pay
		p.busyGrants += uint64(pay)
		p.refillCycles += uint64(pay)
	}
	p.sb.Expire(now)
	p.sb.SampleOccupancy()
	if p.cfg.StoresFirst {
		p.drainStores(now)
	}
}

// bankOf maps an address to its line-interleaved bank.
func (p *MemPort) bankOf(addr uint64) int {
	return int((addr / uint64(p.sys.L1D.Geom().LineBytes)) & p.bankMask)
}

// refillCost is the port-cycles one line movement costs.
func (p *MemPort) refillCost() int {
	lb := p.sys.L1D.Geom().LineBytes
	k := lb / p.cfg.FillBytesPerCycle
	if k < 1 {
		k = 1
	}
	return k
}

// noteMiss schedules the array-write occupancy of an accepted miss to addr.
func (p *MemPort) noteMiss(addr uint64, r mem.AccessResult) {
	if r.L1Hit || r.NoFill {
		return
	}
	k := p.refillCost()
	if r.EvictedDirty {
		k += p.refillCost() // victim read-out shares the array port
	}
	w := refillWindow{at: r.Ready, cycles: k}
	if p.banked {
		w.bank = p.bankOf(addr)
	}
	p.pendingRefills = append(p.pendingRefills, w) //portlint:ignore hotpathclosure bounded by outstanding MSHR fills; BeginCycle drains via pendingRefills[:0], so the backing array stops growing at its high-water mark
}

// portFree reports whether any access slot remains this cycle (for banked
// configurations, whether any bank is still idle).
func (p *MemPort) portFree() bool {
	if p.banked {
		for _, busy := range p.bankBusy {
			if !busy {
				return true
			}
		}
		return false
	}
	return p.grants < p.cfg.Count
}

// claimSlot takes the access slot for addr: a port, or the address's bank.
// It reports whether one was available; on refusal it classifies the reject.
func (p *MemPort) claimSlot(addr uint64) (ok bool, reason RejectReason) {
	if p.banked {
		b := p.bankOf(addr)
		if p.bankBusy[b] {
			return false, RejectBankConflict
		}
		p.bankBusy[b] = true
		p.grants++
		p.busyGrants++
		return true, RejectNone
	}
	if p.grants >= p.cfg.Count {
		return false, RejectPortBusy
	}
	p.grants++
	p.busyGrants++
	return true, RejectNone
}

// releaseSlot undoes a claimSlot when the access was refused downstream
// (MSHRs full): the tag probe consumed the slot speculatively but the model
// lets the caller retry without losing the cycle's slot.
func (p *MemPort) releaseSlot(addr uint64) {
	if p.banked {
		p.bankBusy[p.bankOf(addr)] = false
	}
	p.grants--
	p.busyGrants--
}

// TryLoad offers a load to the memory system at cycle now. In order it
// checks the store buffer (forward or conflict), the load-all line buffers,
// and finally the cache through a port grant. On a wide-port cache access
// the full aligned chunk is latched into a line buffer ("load-all").
//
//portlint:hotpath
func (p *MemPort) TryLoad(now, addr uint64, size int) LoadResult {
	if fwd, conflict := p.sb.Probe(addr, size); conflict {
		p.rejects[RejectStoreConflict]++
		return LoadResult{}
	} else if fwd {
		p.loadsBySource[SourceStoreBuffer]++
		return LoadResult{Accepted: true, Ready: now + 1, Source: SourceStoreBuffer}
	}
	if readyAt, hit := p.lbs.Lookup(addr); hit {
		ready := now + 1
		if readyAt > ready {
			ready = readyAt
		}
		p.loadsBySource[SourceLineBuffer]++
		return LoadResult{Accepted: true, Ready: ready, Source: SourceLineBuffer}
	}
	ok, reason := p.claimSlot(addr)
	if !ok {
		p.rejects[reason]++
		return LoadResult{}
	}
	r := p.sys.DataAccess(now, addr, false)
	if !r.Accepted {
		p.releaseSlot(addr)
		p.rejects[RejectMSHR]++
		return LoadResult{}
	}
	p.loadPortAccesses++
	p.loadsBySource[SourceCache]++
	p.noteMiss(addr, r)
	if p.cfg.PrefetchNextLine {
		line := p.sys.L1D.LineAddr(addr)
		if r.L1Hit {
			if p.prefetched[line] {
				p.usefulPrefetch++
				delete(p.prefetched, line)
			}
		} else {
			lb := uint64(p.sys.L1D.Geom().LineBytes)
			for d := 1; d <= p.cfg.PrefetchDegree; d++ {
				p.enqueuePrefetch(line + uint64(d)*lb)
			}
		}
	}
	if p.wide && p.lbs.Size() > 0 {
		// Load-all: the port read returned the whole aligned chunk;
		// latch it so spatially local loads skip the port.
		p.lbs.Fill(addr, r.Ready)
	}
	return LoadResult{Accepted: true, Ready: r.Ready, Source: SourceCache}
}

// TryCommitStore offers a committing store to the store buffer at cycle
// now. It returns false when the buffer cannot accept it, in which case the
// core must stall commit and retry — the back-pressure path that makes
// buffer depth matter. Stores invalidate any line buffer latching their
// chunk; the latched copy is stale the moment the store is architecturally
// performed.
//
//portlint:hotpath
func (p *MemPort) TryCommitStore(now, addr uint64, size int) bool {
	if !p.sb.CanAccept(addr, size) {
		return false
	}
	p.sb.Insert(now, addr, size, nil)
	if p.cfg.StoresCheckLineBuffers {
		p.lbs.InvalidateChunk(addr)
	}
	return true
}

// EndCycle drains the store buffer into whatever port slots the cycle's
// loads left unused (loads have priority, as in the paper — unless
// StoresFirst already drained at BeginCycle), then spends any remaining
// slots on queued prefetches.
//
//portlint:hotpath
func (p *MemPort) EndCycle(now uint64) {
	if !p.cfg.StoresFirst {
		p.drainStores(now)
	}
	if p.cfg.PrefetchNextLine {
		p.issuePrefetches(now)
	}
}

// drainStores issues store-buffer entries into free slots. Each drained
// entry performs one wide write covering every combined store in it. With
// combining enabled, a young entry in a lightly loaded buffer is held open
// so subsequent stores can merge into it; it drains once the buffer passes
// quarter occupancy or the entry ages out.
//
//portlint:hotpath
func (p *MemPort) drainStores(now uint64) {
	if p.cfg.FaultStuckDrain {
		return // injected fault: the drain path is wedged shut
	}
	for p.portFree() {
		i := p.sb.NextDrain()
		if i < 0 {
			return
		}
		if p.sb.HoldActive(i, now) {
			return
		}
		chunk := p.sb.ChunkAddrAt(i)
		if ok, _ := p.claimSlot(chunk); !ok {
			// Banked: this drain's bank is busy; a younger entry may
			// target another bank, but draining out of order would
			// complicate ordering for little gain — retry next cycle.
			return
		}
		r := p.sys.DataAccess(now, chunk, true)
		if !r.Accepted {
			p.releaseSlot(chunk)
			return // MSHRs exhausted; retry next cycle
		}
		p.storePortAccesses++
		p.noteMiss(chunk, r)
		p.sb.MarkIssued(i, r.Ready)
		if p.rec != nil {
			p.rec.Record(now, diag.EventDrain, p.sb.SeqAt(i), chunk)
		}
	}
}

// maxPrefetchQueue bounds the prefetch candidate queue.
const maxPrefetchQueue = 16

// enqueuePrefetch records a candidate line, deduplicating against the
// queue's recent content cheaply via the prefetched set.
//
//portlint:hotpath
func (p *MemPort) enqueuePrefetch(lineAddr uint64) {
	if p.pfCount >= maxPrefetchQueue {
		return
	}
	i := p.pfHead + p.pfCount
	if i >= maxPrefetchQueue {
		i -= maxPrefetchQueue
	}
	p.prefetchQueue[i] = lineAddr
	p.pfCount++
}

// issuePrefetches spends whatever slots remain after loads, store drains
// and refills on queued prefetch lines.
//
//portlint:hotpath
func (p *MemPort) issuePrefetches(now uint64) {
	for p.pfCount > 0 && p.portFree() {
		line := p.prefetchQueue[p.pfHead]
		p.pfHead++
		if p.pfHead == maxPrefetchQueue {
			p.pfHead = 0
		}
		p.pfCount--
		if p.sys.L1D.Contains(line) {
			continue // already resident: drop without spending a slot
		}
		if ok, _ := p.claimSlot(line); !ok {
			return
		}
		r := p.sys.DataAccess(now, line, false)
		if !r.Accepted {
			p.releaseSlot(line)
			return
		}
		p.prefetches++
		p.noteMiss(line, r)
		// Bound the usefulness-tracking set; losing old entries only
		// undercounts usefulness.
		if len(p.prefetched) > 4096 {
			clear(p.prefetched)
		}
		p.prefetched[line] = true
	}
}

// FinishCycle records end-of-cycle statistics. Call after EndCycle.
func (p *MemPort) FinishCycle() {
	p.grantHist.Observe(uint64(p.grants))
}

// PendingStores reports the store-buffer occupancy (entries not yet
// completed), used by the core's drain logic at end of simulation.
func (p *MemPort) PendingStores() int { return p.sb.Len() }

// DrainAll forces the remaining store-buffer contents out, advancing time as
// needed, and returns the cycle the last write completes. Used at the end of
// a simulation so every committed store is accounted.
func (p *MemPort) DrainAll(now uint64) uint64 {
	if p.cfg.FaultStuckDrain {
		// The injected wedge would make this loop spin forever; the
		// un-drained stores are exactly the failure under study.
		return now
	}
	last := now
	for p.sb.Len() > 0 {
		p.BeginCycle(now)
		p.EndCycle(now)
		p.FinishCycle()
		if d := p.sb.LatestDrainDone(); d > last {
			last = d
		}
		now++
	}
	return last
}

// NextEvent reports the soonest cycle at or after now at which the port
// subsystem acts on its own: refill debt or queued prefetches make every
// cycle active; otherwise the candidates are an in-flight drain completing
// (a buffer slot frees), the drain candidate becoming willing to compete for
// a slot, a scheduled refill window arriving, and a line-buffer fill landing.
// Values at or below now mean "do not skip"; see NextEventer.
//
//portlint:hotpath
func (p *MemPort) NextEvent(now uint64) uint64 {
	if p.refillDebt > 0 || p.pfCount > 0 {
		return now
	}
	for _, d := range p.bankDebt {
		if d > 0 {
			return now
		}
	}
	next := p.sb.NextExpiry()
	if !p.cfg.FaultStuckDrain {
		if t := p.sb.NextDrainEligible(now); t < next {
			next = t
		}
	}
	for i := range p.pendingRefills {
		if p.pendingRefills[i].at < next {
			next = p.pendingRefills[i].at
		}
	}
	if t := p.lbs.NextEvent(now); t < next {
		next = t
	}
	return next
}

// SkipCycles accounts for n consecutive inert cycles in one step. It must
// leave the port statistics exactly as n idle BeginCycle/EndCycle/
// FinishCycle rounds would have: the cycle counter advances, the grant
// histogram records n zero-grant cycles, and the store buffer logs n
// occupancy samples at its (unchanged) depth. The caller guarantees the
// cycles are inert — NextEvent returned a cycle past the whole gap.
//
//portlint:hotpath
func (p *MemPort) SkipCycles(n uint64) {
	p.cycles += n
	p.grantHist.ObserveN(0, n)
	p.sb.SkipOccupancySamples(n)
}

// Report writes the port subsystem's statistics into a stats.Set under the
// "port." prefix.
func (p *MemPort) Report(s *stats.Set) {
	s.Add(stats.PortCycles, p.cycles)
	s.Add(stats.PortGrants, p.busyGrants)
	s.Add(stats.PortLoadAccesses, p.loadPortAccesses)
	s.Add(stats.PortStoreAccesses, p.storePortAccesses)
	s.Add(stats.PortLoadsFromCache, p.loadsBySource[SourceCache])
	s.Add(stats.PortLoadsFromLineBuffer, p.loadsBySource[SourceLineBuffer])
	s.Add(stats.PortLoadsFromStoreBuffer, p.loadsBySource[SourceStoreBuffer])
	s.Add(stats.PortRejectPortBusy, p.rejects[RejectPortBusy])
	s.Add(stats.PortRejectMSHR, p.rejects[RejectMSHR])
	s.Add(stats.PortRejectStoreConflict, p.rejects[RejectStoreConflict])
	s.Add(stats.PortRejectBankConflict, p.rejects[RejectBankConflict])
	s.Add(stats.PortSBInserts, p.sb.Inserts())
	s.Add(stats.PortSBCombined, p.sb.Combined())
	s.Add(stats.PortSBDrains, p.sb.Drains())
	s.Add(stats.PortSBForwards, p.sb.Forwards())
	s.Add(stats.PortLBHits, p.lbs.Hits())
	s.Add(stats.PortLBFills, p.lbs.Fills())
	s.Add(stats.PortLBInvalidations, p.lbs.Invalidations())
	s.Add(stats.PortRefillCycles, p.refillCycles)
	s.Add(stats.PortPrefetches, p.prefetches)
	s.Add(stats.PortUsefulPrefetches, p.usefulPrefetch)
	for v := 0; v <= SlotsPerCycle(p.cfg); v++ {
		s.Add(stats.GrantBucket(v), p.grantHist.Bucket(uint64(v)))
	}
}

// Utilisation returns the mean fraction of access slots (ports or banks)
// granted per cycle.
func (p *MemPort) Utilisation() float64 {
	slots := uint64(SlotsPerCycle(p.cfg))
	if p.cycles == 0 || slots == 0 {
		return 0
	}
	return float64(p.busyGrants) / float64(p.cycles*slots)
}

// GrantHistogram returns the per-cycle grant-count histogram.
func (p *MemPort) GrantHistogram() *stats.Histogram { return p.grantHist }

// LoadsBySource returns the counts of loads satisfied by each source.
func (p *MemPort) LoadsBySource() (cache, lineBuffer, storeBuffer uint64) {
	return p.loadsBySource[SourceCache], p.loadsBySource[SourceLineBuffer], p.loadsBySource[SourceStoreBuffer]
}

// Rejects returns the rejection counts by reason.
func (p *MemPort) Rejects() (portBusy, mshr, storeConflict uint64) {
	return p.rejects[RejectPortBusy], p.rejects[RejectMSHR], p.rejects[RejectStoreConflict]
}

// BankConflicts returns the number of accesses refused because their bank
// was busy (banked configurations only).
func (p *MemPort) BankConflicts() uint64 { return p.rejects[RejectBankConflict] }

// RejectBreakdown returns the cumulative refusal counters split the way
// the cycle-accounting layer attributes them: MSHR exhaustion (a
// memory-system limit) versus every structural port refusal (port busy,
// bank conflict, overlapping buffered store). Reading two words per cycle
// keeps the armed accounting path allocation-free.
//
//portlint:hotpath
func (p *MemPort) RejectBreakdown() (mshr, structural uint64) {
	return p.rejects[RejectMSHR],
		p.rejects[RejectPortBusy] + p.rejects[RejectBankConflict] + p.rejects[RejectStoreConflict]
}
