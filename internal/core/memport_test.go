package core

import (
	"math/rand"
	"testing"

	"portsim/internal/config"
	"portsim/internal/mem"
	"portsim/internal/stats"
)

func newPort(t *testing.T, ports config.Ports) (*MemPort, *mem.System) {
	t.Helper()
	m := config.Baseline()
	m.Ports = ports
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	sys, err := mem.NewSystem(&m)
	if err != nil {
		t.Fatal(err)
	}
	return NewMemPort(m.Ports, sys), sys
}

func singleNarrow() config.Ports {
	return config.Ports{Count: 1, WidthBytes: 8, StoreBufferEntries: 8, FillBytesPerCycle: 16, StoresCheckLineBuffers: true}
}

func bestSingle() config.Ports {
	return config.BestSingle().Ports
}

func TestTryLoadConsumesPort(t *testing.T) {
	p, _ := newPort(t, singleNarrow())
	p.BeginCycle(0)
	if r := p.TryLoad(0, 0x1000, 8); !r.Accepted || r.Source != SourceCache {
		t.Fatalf("first load = %+v", r)
	}
	if r := p.TryLoad(0, 0x2000, 8); r.Accepted {
		t.Fatal("second load accepted on a single port")
	}
	portBusy, _, _ := p.Rejects()
	if portBusy != 1 {
		t.Errorf("port-busy rejects = %d, want 1", portBusy)
	}
	p.EndCycle(0)
	p.FinishCycle()
	p.BeginCycle(1)
	if r := p.TryLoad(1, 0x2000, 8); !r.Accepted {
		t.Fatal("load refused on a fresh cycle")
	}
}

func TestDualPortTwoLoadsPerCycle(t *testing.T) {
	cfg := singleNarrow()
	cfg.Count = 2
	p, _ := newPort(t, cfg)
	p.BeginCycle(0)
	if !p.TryLoad(0, 0x1000, 8).Accepted || !p.TryLoad(0, 0x2000, 8).Accepted {
		t.Fatal("dual port refused two loads")
	}
	if p.TryLoad(0, 0x3000, 8).Accepted {
		t.Fatal("dual port accepted a third load")
	}
}

func TestLoadAllLineBufferSkipsPort(t *testing.T) {
	p, _ := newPort(t, bestSingle())
	p.BeginCycle(0)
	r := p.TryLoad(0, 0x1000, 8)
	if !r.Accepted || r.Source != SourceCache {
		t.Fatalf("first load = %+v", r)
	}
	// Second load in the same 32-byte chunk: line buffer, no port needed
	// even though the single port is consumed.
	r2 := p.TryLoad(0, 0x1008, 8)
	if !r2.Accepted || r2.Source != SourceLineBuffer {
		t.Fatalf("chunk-local load = %+v, want line-buffer hit", r2)
	}
	if r2.Ready < r.Ready {
		t.Error("line-buffer data ready before the fill that latched it")
	}
	if _, lb, _ := p.LoadsBySource(); lb != 1 {
		t.Error("line-buffer load not counted")
	}
}

func TestNarrowPortNeverFillsLineBuffers(t *testing.T) {
	cfg := singleNarrow()
	cfg.LineBuffers = 4 // enabled, but the 8-byte port cannot load-all
	p, _ := newPort(t, cfg)
	p.BeginCycle(0)
	p.TryLoad(0, 0x1000, 8)
	p.EndCycle(0)
	p.BeginCycle(1)
	if r := p.TryLoad(1, 0x1008, 8); r.Source == SourceLineBuffer {
		t.Error("narrow port produced a line-buffer hit")
	}
	if p.LineBuffers().Fills() != 0 {
		t.Error("narrow port filled a line buffer")
	}
}

func TestStoreInvalidatesLineBuffer(t *testing.T) {
	p, _ := newPort(t, bestSingle())
	p.BeginCycle(0)
	p.TryLoad(0, 0x1000, 8) // latches chunk 0x1000
	p.EndCycle(0)
	p.BeginCycle(1)
	if !p.TryCommitStore(1, 0x1008, 8) {
		t.Fatal("store refused")
	}
	// A load to the stored bytes forwards from the store buffer...
	r := p.TryLoad(1, 0x1008, 8)
	if !r.Accepted || r.Source != SourceStoreBuffer {
		t.Fatalf("load over store = %+v, want store-buffer forward", r)
	}
	// ...and a load to OTHER bytes of the chunk must NOT hit the (stale)
	// line buffer.
	r2 := p.TryLoad(1, 0x1010, 8)
	if r2.Accepted && r2.Source == SourceLineBuffer {
		t.Fatal("load hit a line buffer invalidated by a store")
	}
}

func TestCacheEvictionInvalidatesLineBuffer(t *testing.T) {
	p, sys := newPort(t, bestSingle())
	p.BeginCycle(0)
	p.TryLoad(0, 0x1000, 8)
	if p.LineBuffers().Live() != 1 {
		t.Fatal("chunk not latched")
	}
	// Force eviction of line 0x1000 from L1D (2-way, 16KB stride sets).
	sys.L1D.Install(0x1000+16384, false)
	sys.L1D.Install(0x1000+32768, false)
	sys.L1D.Install(0x1000+49152, false)
	if p.LineBuffers().Live() != 0 {
		t.Error("line buffer survived the eviction of its cache line")
	}
}

func TestStoreDrainUsesIdlePort(t *testing.T) {
	p, _ := newPort(t, singleNarrow())
	p.BeginCycle(0)
	if !p.TryCommitStore(0, 0x3000, 8) {
		t.Fatal("store refused")
	}
	p.EndCycle(0) // no loads: the store should drain now
	p.FinishCycle()
	if p.StoreBuffer().Drains() != 1 {
		t.Error("idle port did not drain the store")
	}
	// The entry occupies the buffer until its write completes (cold miss).
	if p.PendingStores() != 1 {
		t.Error("issued store vanished before completion")
	}
	p.BeginCycle(100000)
	if p.PendingStores() != 0 {
		t.Error("completed store still occupies the buffer")
	}
}

func TestLoadsHavePriorityOverStores(t *testing.T) {
	p, _ := newPort(t, singleNarrow())
	// Warm the line so loads hit, then run the clock forward so the
	// warm-up miss's refill bandwidth is fully paid off.
	p.BeginCycle(0)
	p.TryLoad(0, 0x4000, 8)
	p.EndCycle(0)
	p.FinishCycle()
	for cyc := uint64(1); cyc < 1000; cyc++ {
		p.BeginCycle(cyc)
		p.EndCycle(cyc)
		p.FinishCycle()
	}
	now := uint64(1000)
	p.BeginCycle(now)
	if !p.TryCommitStore(now, 0x5000, 8) {
		t.Fatal("store refused")
	}
	if !p.TryLoad(now, 0x4000, 8).Accepted {
		t.Fatal("load refused")
	}
	p.EndCycle(now)
	p.FinishCycle()
	// The single port went to the load; the store is still queued.
	if p.StoreBuffer().Drains() != 0 {
		t.Error("store stole the port from a load")
	}
	p.BeginCycle(now + 1)
	p.EndCycle(now + 1)
	if p.StoreBuffer().Drains() != 1 {
		t.Error("store did not drain on the next idle cycle")
	}
}

func TestStoreBufferBackPressure(t *testing.T) {
	cfg := singleNarrow()
	cfg.StoreBufferEntries = 2
	p, _ := newPort(t, cfg)
	p.BeginCycle(0)
	// Saturate: distinct chunks so nothing combines, and consume the port
	// with a load so nothing drains.
	p.TryLoad(0, 0x9000, 8)
	if !p.TryCommitStore(0, 0x100, 8) || !p.TryCommitStore(0, 0x200, 8) {
		t.Fatal("stores refused below capacity")
	}
	if p.TryCommitStore(0, 0x300, 8) {
		t.Error("store accepted beyond capacity")
	}
	p.EndCycle(0)
}

func TestCombiningRetiresManyStoresPerDrain(t *testing.T) {
	cfg := bestSingle()
	chunk := uint64(cfg.WidthBytes)
	perChunk := int(chunk / 8)
	p, _ := newPort(t, cfg)
	// Fill one chunk with 8-byte stores while the port is load-busy.
	p.BeginCycle(0)
	p.TryLoad(0, 0x8000, 8)
	for i := 0; i < perChunk; i++ {
		if !p.TryCommitStore(0, 0x100+uint64(i)*8, 8) {
			t.Fatal("store refused")
		}
	}
	p.EndCycle(0)
	p.FinishCycle()
	if p.StoreBuffer().Len() != 1 {
		t.Fatalf("combining left %d entries, want 1", p.StoreBuffer().Len())
	}
	// The combining hold policy keeps the entry open for merging; it
	// drains once aged out.
	for cyc := uint64(1); cyc <= combineHoldCycles+1; cyc++ {
		p.BeginCycle(cyc)
		p.EndCycle(cyc)
		p.FinishCycle()
	}
	if p.StoreBuffer().Drains() != 1 {
		t.Fatal("combined entry did not drain in one port write")
	}
	if got := p.StoreBuffer().StoresPerDrain(); got != float64(perChunk) {
		t.Errorf("StoresPerDrain = %v, want %d", got, perChunk)
	}
}

func TestPartialStoreOverlapStallsLoad(t *testing.T) {
	p, _ := newPort(t, bestSingle())
	p.BeginCycle(0)
	if !p.TryCommitStore(0, 0x100, 4) {
		t.Fatal("store refused")
	}
	r := p.TryLoad(0, 0x100, 8) // needs bytes 0-7; store wrote 0-3
	if r.Accepted {
		t.Fatal("partially covered load accepted")
	}
	_, _, conflicts := p.Rejects()
	if conflicts != 1 {
		t.Errorf("store-conflict rejects = %d, want 1", conflicts)
	}
}

func TestUtilisationAndHistogram(t *testing.T) {
	p, _ := newPort(t, singleNarrow())
	for cyc := uint64(0); cyc < 4; cyc++ {
		p.BeginCycle(cyc)
		if cyc%2 == 0 {
			p.TryLoad(cyc, 0x1000*cyc, 8)
		}
		p.EndCycle(cyc)
		p.FinishCycle()
	}
	if got := p.Utilisation(); got != 0.5 {
		t.Errorf("Utilisation = %v, want 0.5", got)
	}
	h := p.GrantHistogram()
	if h.Bucket(0) != 2 || h.Bucket(1) != 2 {
		t.Errorf("grant histogram 0:%d 1:%d, want 2 and 2", h.Bucket(0), h.Bucket(1))
	}
}

func TestDrainAll(t *testing.T) {
	p, _ := newPort(t, bestSingle())
	p.BeginCycle(0)
	for i := uint64(0); i < 4; i++ {
		if !p.TryCommitStore(0, 0x1000*i, 8) {
			t.Fatal("store refused")
		}
	}
	p.EndCycle(0)
	p.FinishCycle()
	last := p.DrainAll(1)
	if p.PendingStores() != 0 {
		t.Error("DrainAll left pending stores")
	}
	if last == 0 {
		t.Error("DrainAll reported no completion time")
	}
}

func TestReport(t *testing.T) {
	p, _ := newPort(t, bestSingle())
	p.BeginCycle(0)
	p.TryLoad(0, 0x100, 8)
	p.TryCommitStore(0, 0x200, 8)
	p.EndCycle(0)
	p.FinishCycle()
	s := stats.NewSet()
	p.Report(s)
	if s.Get("port.cycles") != 1 {
		t.Errorf("port.cycles = %d", s.Get("port.cycles"))
	}
	if s.Get("port.load_accesses") != 1 {
		t.Errorf("port.load_accesses = %d", s.Get("port.load_accesses"))
	}
	if s.Get("port.sb_inserts") != 1 {
		t.Errorf("port.sb_inserts = %d", s.Get("port.sb_inserts"))
	}
}

func TestLoadSourceString(t *testing.T) {
	if SourceCache.String() != "cache" || SourceLineBuffer.String() != "line-buffer" ||
		SourceStoreBuffer.String() != "store-buffer" {
		t.Error("source names wrong")
	}
	if LoadSource(9).String() == "" {
		t.Error("unknown source renders empty")
	}
}

// TestLineBufferNeverStale is DESIGN.md's staleness property: replaying a
// random mix of loads and stores, a load served by the line buffers must
// always observe a chunk latched at or after the last committed store to
// that chunk. Sequence numbers stand in for data values.
func TestLineBufferNeverStale(t *testing.T) {
	p, _ := newPort(t, bestSingle())
	rng := rand.New(rand.NewSource(3))
	fillSeq := map[uint64]int{}  // chunk -> op index of the cache load that latched it
	storeSeq := map[uint64]int{} // chunk -> op index of the last committed store
	chunk := func(a uint64) uint64 { return a &^ 31 }
	now := uint64(0)
	for op := 0; op < 50000; op++ {
		now++
		p.BeginCycle(now)
		addr := uint64(rng.Intn(1<<14)) &^ 7 // 16KB footprint, 8-byte aligned
		if rng.Intn(3) == 0 {
			if p.TryCommitStore(now, addr, 8) {
				storeSeq[chunk(addr)] = op
			}
		} else {
			r := p.TryLoad(now, addr, 8)
			if r.Accepted {
				switch r.Source {
				case SourceCache:
					fillSeq[chunk(addr)] = op
				case SourceLineBuffer:
					if fillSeq[chunk(addr)] < storeSeq[chunk(addr)] {
						t.Fatalf("op %d: line-buffer hit on chunk %#x latched at %d, but stored at %d",
							op, chunk(addr), fillSeq[chunk(addr)], storeSeq[chunk(addr)])
					}
				}
			}
		}
		p.EndCycle(now)
		p.FinishCycle()
	}
}
