package core

import (
	"testing"
)

// FuzzStoreBufferInsert drives a store buffer through an arbitrary byte-coded
// op sequence and checks the structural invariants that the simulator relies
// on: occupancy never exceeds capacity, CanAccept never lies (an accepted
// Insert must not panic), drains only hand out un-issued entries, and the
// counters stay consistent. Ops are decoded so that every input is a valid
// call sequence — the fuzzer explores orderings and aliasing patterns, not
// the documented misuse panics (those are pinned in panics_test.go).
func FuzzStoreBufferInsert(f *testing.F) {
	// Seed corpus: insert/combine/drain/expire cycles, probe hits and
	// conflicts, full-buffer pressure.
	f.Add(uint8(4), uint8(8), true, []byte{0x00, 0x11, 0x22, 0x33, 0x44, 0x55})
	f.Add(uint8(1), uint8(8), false, []byte{0x00, 0x00, 0x00, 0x00})
	f.Add(uint8(2), uint8(16), true, []byte{0x10, 0x20, 0xf0, 0x30, 0xf1, 0x40})
	f.Add(uint8(8), uint8(32), false, []byte{0x01, 0x41, 0x81, 0xc1, 0xf0, 0xf1, 0x02})
	f.Add(uint8(3), uint8(64), true, []byte{0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0xf0, 0xf1, 0xf2})

	f.Fuzz(func(t *testing.T, rawCap, rawChunk uint8, combining bool, ops []byte) {
		capacity := int(rawCap%16) + 1
		chunkBytes := 8 << (rawChunk % 4) // 8, 16, 32, 64
		b := NewStoreBuffer(capacity, chunkBytes, combining)

		var now uint64
		inserted := 0
		for _, op := range ops {
			now++
			// Decode one op: low 6 bits pick an address in a 4-chunk window
			// (to provoke aliasing), top 2 bits pick the action.
			addr := uint64(op&0x3f) * 2
			size := 1 << (addr % 4) // 1, 2, 4, 8 — naturally aligned below
			addr &^= uint64(size - 1)
			switch op >> 6 {
			case 0, 1: // insert (twice as likely: pressure matters)
				if !b.CanAccept(addr, size) {
					continue
				}
				before := b.Len()
				b.Insert(now, addr, size, nil)
				inserted++
				if b.Len() > b.Cap() {
					t.Fatalf("occupancy %d exceeds capacity %d", b.Len(), b.Cap())
				}
				if b.Len() < before {
					t.Fatalf("Insert shrank the buffer: %d -> %d", before, b.Len())
				}
			case 2: // probe
				forward, conflict := b.Probe(addr, size)
				if forward && conflict {
					t.Fatal("Probe returned forward and conflict together")
				}
			case 3: // drain one entry, then expire completed drains
				if e := b.NextDrain(); e >= 0 {
					b.MarkIssued(e, now+2)
				}
				before := b.Len()
				done := b.Expire(now)
				if b.Len() != before-len(done) {
					t.Fatalf("Expire removed %d entries but returned %d", before-b.Len(), len(done))
				}
				if uint64(len(done)) > b.Drains() {
					t.Fatalf("expired %d entries with only %d drains issued", len(done), b.Drains())
				}
				if b.NextExpiry() <= now {
					t.Fatalf("NextExpiry %d not past cycle %d after Expire", b.NextExpiry(), now)
				}
			}
		}
		if got := b.Inserts(); got != uint64(inserted) {
			t.Fatalf("insert counter %d, want %d", got, inserted)
		}
		if b.Combined() > b.Inserts() {
			t.Fatalf("combined %d exceeds inserts %d", b.Combined(), b.Inserts())
		}
		if b.Len() > b.Cap() {
			t.Fatalf("final occupancy %d exceeds capacity %d", b.Len(), b.Cap())
		}
		// Drain everything: the buffer must be able to empty from any state.
		for b.Len() > 0 {
			now++
			if e := b.NextDrain(); e >= 0 {
				b.MarkIssued(e, now)
			}
			before := b.Len()
			b.Expire(now)
			if b.Len() >= before && b.NextDrain() < 0 {
				// Every remaining entry must be issued and waiting; one more
				// cycle must expire at least one of them.
				continue
			}
		}
	})
}
