package core

import (
	"fmt"
	"strings"
	"testing"
)

// wantPanic runs fn and asserts it panics with a message containing want.
// Every store-buffer panic is a misuse guard: the experiment engine's
// containment boundary (internal/experiments) turns these into CellErrors,
// so the exact messages are load-bearing diagnostics.
func wantPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		p := recover() //portlint:ignore recoverhygiene test asserts the panic fires
		if p == nil {
			t.Errorf("no panic; want panic containing %q", want)
			return
		}
		if msg := fmt.Sprint(p); !strings.Contains(msg, want) {
			t.Errorf("panic %q; want it to contain %q", msg, want)
		}
	}()
	fn()
}

// TestNewStoreBufferPanicsOnBadSizing covers the constructor's two guards.
func TestNewStoreBufferPanicsOnBadSizing(t *testing.T) {
	wantPanic(t, "store buffer capacity must be positive", func() { NewStoreBuffer(0, 8, false) })
	wantPanic(t, "store buffer capacity must be positive", func() { NewStoreBuffer(-3, 8, false) })
	for _, w := range []int{0, 4, 7, 12, 24, 128} {
		w := w
		wantPanic(t, fmt.Sprintf("unsupported chunk width %d", w), func() { NewStoreBuffer(4, w, false) })
	}
	// The supported widths construct cleanly.
	for _, w := range []int{8, 16, 32, 64} {
		if b := NewStoreBuffer(1, w, true); b == nil {
			t.Fatalf("width %d rejected", w)
		}
	}
}

// TestInsertPanicsOnBadStoreSize covers the per-store size guard — the panic
// the badinst fault injector drives through a full pipeline run.
func TestInsertPanicsOnBadStoreSize(t *testing.T) {
	for _, size := range []int{0, -1, 9, 64} {
		size := size
		b := NewStoreBuffer(4, 8, false)
		wantPanic(t, fmt.Sprintf("store size %d unsupported", size), func() { b.Insert(0, 0x100, size, nil) })
	}
}

// TestInsertPanicsOnDataSizeMismatch covers the data-carrying mode guard.
func TestInsertPanicsOnDataSizeMismatch(t *testing.T) {
	b := NewStoreBuffer(4, 8, false)
	wantPanic(t, "data length disagrees with store size", func() { b.Insert(0, 0x100, 4, []byte{1, 2}) })
	wantPanic(t, "data length disagrees with store size", func() { b.Insert(0, 0x100, 1, []byte{1, 2}) })
	// nil data (timing-only) and exact data both pass.
	b.Insert(0, 0x100, 4, nil)
	b.Insert(0, 0x200, 2, []byte{1, 2})
}

// TestInsertPanicsWhenFull covers the lost-store guard: inserting past
// capacity without CanAccept is a simulator bug, not a recoverable state.
func TestInsertPanicsWhenFull(t *testing.T) {
	b := NewStoreBuffer(2, 8, false)
	b.Insert(0, 0x100, 8, nil)
	b.Insert(0, 0x200, 8, nil)
	if b.CanAccept(0x300, 8) {
		t.Fatal("full buffer claims CanAccept")
	}
	wantPanic(t, "Insert on a full store buffer", func() { b.Insert(0, 0x300, 8, nil) })

	// With combining, the same third store is accepted when it merges into
	// an existing un-issued chunk even at capacity.
	c := NewStoreBuffer(2, 8, true)
	c.Insert(0, 0x100, 8, nil)
	c.Insert(0, 0x200, 8, nil)
	if !c.CanAccept(0x104, 4) {
		t.Fatal("combining buffer refuses a mergeable store at capacity")
	}
	if !c.Insert(0, 0x104, 4, nil) {
		t.Error("mergeable store did not combine")
	}
}
