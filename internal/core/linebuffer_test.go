package core

import "testing"

func TestLineBufferDisabled(t *testing.T) {
	s := NewLineBufferSet(0, 32)
	s.Fill(0x100, 5)
	if _, hit := s.Lookup(0x100); hit {
		t.Error("disabled set returned a hit")
	}
	if s.Size() != 0 {
		t.Error("disabled set has non-zero size")
	}
}

func TestLineBufferChunkAddr(t *testing.T) {
	s := NewLineBufferSet(2, 32)
	if got := s.ChunkAddr(0x12345); got != 0x12340 {
		t.Errorf("ChunkAddr(0x12345) = %#x, want 0x12340", got)
	}
}

func TestLineBufferFillThenHit(t *testing.T) {
	s := NewLineBufferSet(2, 32)
	s.Fill(0x108, 50) // latches chunk 0x100
	ready, hit := s.Lookup(0x118)
	if !hit || ready != 50 {
		t.Errorf("Lookup = (%d,%v), want (50,true)", ready, hit)
	}
	if _, hit := s.Lookup(0x120); hit {
		t.Error("adjacent chunk hit spuriously")
	}
	if s.Hits() != 1 || s.Misses() != 1 || s.Fills() != 1 {
		t.Errorf("stats hits=%d misses=%d fills=%d", s.Hits(), s.Misses(), s.Fills())
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v", got)
	}
}

func TestLineBufferHitRateEmpty(t *testing.T) {
	if NewLineBufferSet(2, 32).HitRate() != 0 {
		t.Error("unused set hit rate should be 0")
	}
}

func TestLineBufferLRUReplacement(t *testing.T) {
	s := NewLineBufferSet(2, 32)
	s.Fill(0x100, 1)
	s.Fill(0x200, 2)
	s.Lookup(0x100)  // 0x100 becomes MRU
	s.Fill(0x300, 3) // must evict 0x200
	if _, hit := s.Lookup(0x200); hit {
		t.Error("LRU victim survived")
	}
	if _, hit := s.Lookup(0x100); !hit {
		t.Error("MRU entry evicted")
	}
	if _, hit := s.Lookup(0x300); !hit {
		t.Error("new entry missing")
	}
}

func TestLineBufferRefill(t *testing.T) {
	s := NewLineBufferSet(2, 32)
	s.Fill(0x100, 10)
	s.Fill(0x104, 20) // same chunk: refresh, not a second fill
	if s.Fills() != 1 {
		t.Errorf("refill counted as new fill: %d", s.Fills())
	}
	ready, _ := s.Lookup(0x100)
	if ready != 20 {
		t.Errorf("refreshed readyAt = %d, want 20", ready)
	}
	if s.Live() != 1 {
		t.Errorf("Live = %d, want 1", s.Live())
	}
}

func TestLineBufferInvalidateChunk(t *testing.T) {
	s := NewLineBufferSet(4, 32)
	s.Fill(0x100, 1)
	s.Fill(0x200, 1)
	s.InvalidateChunk(0x110)
	if _, hit := s.Lookup(0x100); hit {
		t.Error("invalidated chunk still hits")
	}
	if _, hit := s.Lookup(0x200); !hit {
		t.Error("unrelated chunk invalidated")
	}
	if s.Invalidations() != 1 {
		t.Errorf("invalidations = %d", s.Invalidations())
	}
	s.InvalidateChunk(0x900) // absent: no-op
	if s.Invalidations() != 1 {
		t.Error("invalidation of absent chunk counted")
	}
}

func TestLineBufferInvalidateLine(t *testing.T) {
	// 32-byte chunks inside a 64-byte line: chunks 0x100 and 0x120 share
	// line 0x100; chunk 0x140 is in the next line.
	s := NewLineBufferSet(4, 32)
	s.Fill(0x100, 1)
	s.Fill(0x120, 1)
	s.Fill(0x140, 1)
	s.InvalidateLine(0x100, 64)
	if _, hit := s.Lookup(0x100); hit {
		t.Error("first chunk of evicted line still latched")
	}
	if _, hit := s.Lookup(0x120); hit {
		t.Error("second chunk of evicted line still latched")
	}
	if _, hit := s.Lookup(0x140); !hit {
		t.Error("chunk outside the evicted line dropped")
	}
}

func TestLineBufferInvalidateAll(t *testing.T) {
	s := NewLineBufferSet(4, 32)
	s.Fill(0x100, 1)
	s.Fill(0x200, 1)
	s.InvalidateAll()
	if s.Live() != 0 {
		t.Error("entries survived InvalidateAll")
	}
	if s.Invalidations() != 2 {
		t.Errorf("invalidations = %d, want 2", s.Invalidations())
	}
}

func TestLineBufferNegativeCount(t *testing.T) {
	s := NewLineBufferSet(-3, 32)
	if s.Size() != 0 {
		t.Error("negative count should clamp to disabled")
	}
}

func TestLineBufferFillPrefersInvalidWay(t *testing.T) {
	s := NewLineBufferSet(3, 32)
	s.Fill(0x100, 1)
	s.Fill(0x200, 2)
	s.InvalidateChunk(0x100)
	s.Fill(0x300, 3) // should land in the invalidated slot
	if _, hit := s.Lookup(0x200); !hit {
		t.Error("valid entry evicted while an empty slot existed")
	}
	if s.Live() != 2 {
		t.Errorf("Live = %d, want 2", s.Live())
	}
}
