package core

import (
	"testing"

	"portsim/internal/config"
)

func bankedPorts(banks int) config.Ports {
	p := singleNarrow()
	p.Banks = banks
	return p
}

func TestBankedParallelAccessDistinctBanks(t *testing.T) {
	p, _ := newPort(t, bankedPorts(4))
	p.BeginCycle(0)
	// Lines 0x1000 and 0x1020 fall in different banks (consecutive lines
	// interleave across banks).
	if !p.TryLoad(0, 0x1000, 8).Accepted {
		t.Fatal("first load refused")
	}
	if !p.TryLoad(0, 0x1020, 8).Accepted {
		t.Fatal("second load to a different bank refused")
	}
}

func TestBankedConflictSameBank(t *testing.T) {
	p, _ := newPort(t, bankedPorts(4))
	p.BeginCycle(0)
	if !p.TryLoad(0, 0x1000, 8).Accepted {
		t.Fatal("first load refused")
	}
	// Same line => same bank: must conflict even though other banks idle.
	if p.TryLoad(0, 0x1008, 8).Accepted {
		t.Fatal("same-bank load accepted in the same cycle")
	}
	if p.BankConflicts() != 1 {
		t.Errorf("bank conflicts = %d, want 1", p.BankConflicts())
	}
	// 4 banks apart (4 lines * 32B = 128): also same bank.
	if p.TryLoad(0, 0x1000+128, 8).Accepted {
		t.Fatal("stride-aliased load accepted")
	}
	p.EndCycle(0)
	p.FinishCycle()
	p.BeginCycle(1)
	if !p.TryLoad(1, 0x1008, 8).Accepted {
		t.Fatal("conflicting load refused on the next cycle")
	}
}

func TestBankedUpToBanksPerCycle(t *testing.T) {
	p, _ := newPort(t, bankedPorts(4))
	p.BeginCycle(0)
	for i := uint64(0); i < 4; i++ {
		if !p.TryLoad(0, 0x1000+i*32, 8).Accepted {
			t.Fatalf("load %d to its own bank refused", i)
		}
	}
	if p.TryLoad(0, 0x2000, 8).Accepted {
		t.Fatal("fifth access accepted with 4 banks")
	}
}

func TestBankedStoreDrainRespectsBanks(t *testing.T) {
	p, _ := newPort(t, bankedPorts(2))
	p.BeginCycle(0)
	// Occupy bank 0 with a load; a store drain to bank 0 must wait, even
	// though bank 1 is idle.
	if !p.TryLoad(0, 0x1000, 8).Accepted { // bank 0 (line 0x1000/32 = even)
		t.Fatal("load refused")
	}
	if !p.TryCommitStore(0, 0x2000, 8) { // also bank 0 (0x2000/32 even)
		t.Fatal("store refused")
	}
	p.EndCycle(0)
	p.FinishCycle()
	if p.StoreBuffer().Drains() != 0 {
		t.Error("store drained into a busy bank")
	}
	p.BeginCycle(1)
	p.EndCycle(1)
	if p.StoreBuffer().Drains() != 1 {
		t.Error("store did not drain once its bank freed")
	}
}

func TestBankedRefillOccupiesItsBank(t *testing.T) {
	p, _ := newPort(t, bankedPorts(2))
	p.BeginCycle(0)
	r := p.TryLoad(0, 0x1000, 8) // miss: refill later owes bank 0
	if !r.Accepted {
		t.Fatal("load refused")
	}
	p.EndCycle(0)
	p.FinishCycle()
	// At the fill-arrival cycle, bank 0 is consumed by the array write
	// but bank 1 remains usable.
	fillCycle := r.Ready
	p.BeginCycle(fillCycle)
	if p.TryLoad(fillCycle, 0x1008, 8).Accepted { // bank 0: busy with refill
		t.Error("bank accepted a load while writing its refill")
	}
	if !p.TryLoad(fillCycle, 0x1020, 8).Accepted { // bank 1: idle
		t.Error("idle bank refused a load during another bank's refill")
	}
}

func TestBankedUtilisationDenominator(t *testing.T) {
	p, _ := newPort(t, bankedPorts(4))
	p.BeginCycle(0)
	p.TryLoad(0, 0x1000, 8)
	p.TryLoad(0, 0x1020, 8)
	p.EndCycle(0)
	p.FinishCycle()
	if got := p.Utilisation(); got != 0.5 {
		t.Errorf("Utilisation = %v, want 0.5 (2 of 4 banks)", got)
	}
}

func TestBankedConfigValidation(t *testing.T) {
	m := config.Baseline()
	m.Ports.Banks = 3
	if err := m.Validate(); err == nil {
		t.Error("non-power-of-two banks accepted")
	}
	m = config.Baseline()
	m.Ports.Banks = 4
	m.Ports.Count = 2
	if err := m.Validate(); err == nil {
		t.Error("banking combined with multi-porting accepted")
	}
	m = config.Banked(8)
	if err := m.Validate(); err != nil {
		t.Errorf("banked preset invalid: %v", err)
	}
}
