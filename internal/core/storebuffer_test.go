package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"portsim/internal/flatmem"
)

func TestStoreBufferPanicsOnBadConstruction(t *testing.T) {
	for _, f := range []func(){
		func() { NewStoreBuffer(0, 32, false) },
		func() { NewStoreBuffer(8, 4, false) },
		func() { NewStoreBuffer(8, 24, false) },
		func() { NewStoreBuffer(8, 128, false) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStoreBufferInsertAndDrainFIFO(t *testing.T) {
	b := NewStoreBuffer(4, 32, false)
	b.Insert(0, 0x100, 8, nil)
	b.Insert(0, 0x200, 4, nil)
	i := b.NextDrain()
	if i < 0 || b.ChunkAddrAt(i) != 0x100 {
		t.Fatalf("first drain = %d, want chunk 0x100", i)
	}
	b.MarkIssued(i, 10)
	i = b.NextDrain()
	if i < 0 || b.ChunkAddrAt(i) != 0x200 {
		t.Fatalf("second drain = %d, want chunk 0x200", i)
	}
	b.MarkIssued(i, 12)
	if b.NextDrain() >= 0 {
		t.Error("drain offered with everything issued")
	}
	done := b.Expire(11)
	if len(done) != 1 || done[0].ChunkAddr != 0x100 {
		t.Errorf("Expire(11) = %v, want just chunk 0x100", done)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
	done = b.Expire(20)
	if len(done) != 1 || b.Len() != 0 {
		t.Error("second expire did not empty the buffer")
	}
}

func TestStoreBufferCapacityWithoutCombining(t *testing.T) {
	b := NewStoreBuffer(2, 32, false)
	if !b.CanAccept(0x100, 8) {
		t.Fatal("empty buffer refused")
	}
	b.Insert(0, 0x100, 8, nil)
	b.Insert(0, 0x100, 8, nil) // same chunk but no combining: second slot
	if b.CanAccept(0x300, 8) {
		t.Error("full buffer accepted")
	}
	if b.Len() != 2 {
		t.Errorf("Len = %d, want 2 (no combining)", b.Len())
	}
}

func TestStoreBufferCombiningMergesChunk(t *testing.T) {
	b := NewStoreBuffer(2, 32, true)
	if combined := b.Insert(0, 0x100, 8, nil); combined {
		t.Error("first store reported combined")
	}
	if combined := b.Insert(0, 0x108, 8, nil); !combined {
		t.Error("same-chunk store did not combine")
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d, want 1", b.Len())
	}
	if b.Combined() != 1 || b.Inserts() != 2 {
		t.Errorf("combined=%d inserts=%d", b.Combined(), b.Inserts())
	}
	i := b.NextDrain()
	if b.MaskAt(i) != 0xffff {
		t.Errorf("mask = %#x, want 0xffff (bytes 0-15)", b.MaskAt(i))
	}
	b.MarkIssued(i, 5)
	b.Expire(10)
	if got := b.StoresPerDrain(); got != 2 {
		t.Errorf("StoresPerDrain = %v, want 2", got)
	}
}

func TestStoreBufferCombiningFullAlwaysAcceptsMatchingChunk(t *testing.T) {
	b := NewStoreBuffer(1, 32, true)
	b.Insert(0, 0x100, 8, nil)
	if !b.CanAccept(0x110, 4) {
		t.Error("full combining buffer refused a matching chunk")
	}
	if b.CanAccept(0x200, 4) {
		t.Error("full buffer accepted a new chunk")
	}
	// Once issued, the entry may no longer combine (its write is in
	// flight); the chunk must be refused like any other.
	b.MarkIssued(b.NextDrain(), 100)
	if b.CanAccept(0x110, 4) {
		t.Error("store combined into an issued entry")
	}
}

func TestStoreBufferProbe(t *testing.T) {
	b := NewStoreBuffer(4, 32, true)
	b.Insert(0, 0x108, 8, nil)
	if fwd, conf := b.Probe(0x108, 8); !fwd || conf {
		t.Errorf("full overlap = (%v,%v), want forward", fwd, conf)
	}
	if fwd, conf := b.Probe(0x10c, 4); !fwd || conf {
		t.Errorf("contained overlap = (%v,%v), want forward", fwd, conf)
	}
	if fwd, conf := b.Probe(0x100, 8); fwd || conf {
		t.Errorf("disjoint same chunk = (%v,%v), want miss", fwd, conf)
	}
	if fwd, conf := b.Probe(0x104, 8); fwd || !conf {
		t.Errorf("partial overlap = (%v,%v), want conflict", fwd, conf)
	}
	if fwd, conf := b.Probe(0x200, 8); fwd || conf {
		t.Errorf("other chunk = (%v,%v), want miss", fwd, conf)
	}
}

func TestStoreBufferProbeYoungestWins(t *testing.T) {
	b := NewStoreBuffer(4, 32, false)
	b.Insert(0, 0x100, 8, []byte{1, 1, 1, 1, 1, 1, 1, 1})
	b.Insert(0, 0x100, 4, []byte{2, 2, 2, 2})
	// Load of bytes 0-3: youngest entry covers them fully.
	if fwd, _ := b.Probe(0x100, 4); !fwd {
		t.Fatal("covered load not forwarded")
	}
	p := make([]byte, 4)
	if !b.ReadForward(0x100, p) {
		t.Fatal("ReadForward failed")
	}
	if p[0] != 2 {
		t.Errorf("forwarded stale bytes: %v", p)
	}
	// Load of bytes 0-7: youngest entry only covers 0-3 -> conflict.
	if fwd, conf := b.Probe(0x100, 8); fwd || !conf {
		t.Error("partial cover by youngest must conflict")
	}
}

func TestStoreBufferSameChunkDrainOrdering(t *testing.T) {
	b := NewStoreBuffer(4, 32, false)
	b.Insert(0, 0x100, 8, nil)
	b.Insert(0, 0x200, 8, nil)
	b.Insert(0, 0x100, 8, nil) // same chunk as first
	e1 := b.NextDrain()
	if b.ChunkAddrAt(e1) != 0x100 {
		t.Fatalf("first drain chunk %#x", b.ChunkAddrAt(e1))
	}
	b.MarkIssued(e1, 1000) // long miss in flight
	e2 := b.NextDrain()
	if e2 < 0 || b.ChunkAddrAt(e2) != 0x200 {
		t.Fatalf("second drain = %d, want chunk 0x200", e2)
	}
	b.MarkIssued(e2, 5)
	// The younger 0x100 entry must be blocked while the older one is in
	// flight, even though ports are free.
	if e3 := b.NextDrain(); e3 >= 0 {
		t.Errorf("same-chunk entry drained while older in flight: index %d", e3)
	}
	b.Expire(1001)
	if e3 := b.NextDrain(); e3 < 0 || b.ChunkAddrAt(e3) != 0x100 {
		t.Error("blocked entry not released after older completed")
	}
}

func TestStoreBufferInsertPanics(t *testing.T) {
	b := NewStoreBuffer(1, 32, false)
	b.Insert(0, 0x100, 8, nil)
	for _, f := range []func(){
		func() { b.Insert(0, 0x200, 8, nil) },       // full
		func() { b.Insert(0, 0x300, 0, nil) },       // zero size
		func() { b.Insert(0, 0x300, 16, nil) },      // oversized
		func() { b.Insert(0, 0x300, 4, []byte{1}) }, // data/size mismatch
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad Insert did not panic")
				}
			}()
			f()
		}()
	}
}

func TestStoreBufferOccupancy(t *testing.T) {
	b := NewStoreBuffer(4, 32, false)
	b.SampleOccupancy()
	b.Insert(0, 0x100, 8, nil)
	b.SampleOccupancy()
	b.SampleOccupancy()
	if got := b.MeanOccupancy(); got != 2.0/3.0 {
		t.Errorf("MeanOccupancy = %v, want 2/3", got)
	}
}

// drainAllInto applies every remaining entry's bytes to the memory,
// respecting the buffer's ordering machinery.
func drainAllInto(b *StoreBuffer, m *flatmem.Mem, now uint64) uint64 {
	for b.Len() > 0 {
		for {
			e := b.NextDrain()
			if e < 0 {
				break
			}
			b.MarkIssued(e, now)
		}
		for _, e := range b.Expire(now) {
			applyEntry(&e, m)
		}
		now++
	}
	return now
}

func applyEntry(e *SBEntry, m *flatmem.Mem) {
	for i := 0; i < maxChunkBytes; i++ {
		if e.Mask&(1<<i) != 0 {
			m.WriteAt(e.ChunkAddr+uint64(i), []byte{e.Data[i]})
		}
	}
}

// TestStoreBufferByteExactness is DESIGN.md's combining-correctness
// property: for any interleaving of stores and drains, with or without
// combining, applying the drained entries in completion order yields exactly
// the memory image of performing the stores directly, and forwarded loads
// always return the newest bytes.
func TestStoreBufferByteExactness(t *testing.T) {
	type op struct {
		Addr    uint16
		SizeSel uint8
		Val     uint64
		IsLoad  bool
		Drain   bool
	}
	check := func(ops []op, combining bool) bool {
		b := NewStoreBuffer(8, 32, combining)
		got := flatmem.New()
		ref := flatmem.New()
		now := uint64(0)
		for _, o := range ops {
			now++
			for _, e := range b.Expire(now) {
				applyEntry(&e, got)
			}
			size := 1 << (o.SizeSel % 4)
			addr := (uint64(o.Addr) % 512) &^ uint64(size-1)
			if o.IsLoad {
				fwd, conflict := b.Probe(addr, size)
				if conflict {
					continue // a real core would stall; nothing to check
				}
				want := make([]byte, size)
				ref.ReadAt(addr, want)
				have := make([]byte, size)
				if fwd {
					if !b.ReadForward(addr, have) {
						return false
					}
				} else {
					// No occupying entry overlaps these bytes, so
					// every store to them has already drained and
					// been applied: the memory image is exact.
					got.ReadAt(addr, have)
				}
				if string(have) != string(want) {
					return false
				}
				continue
			}
			data := make([]byte, size)
			for i := range data {
				data[i] = byte(o.Val >> (8 * i))
			}
			if !b.CanAccept(addr, size) {
				e := b.NextDrain()
				if e < 0 {
					now += 100
					for _, d := range b.Expire(now) {
						applyEntry(&d, got)
					}
					e = b.NextDrain()
				}
				if e >= 0 {
					b.MarkIssued(e, now+3)
				}
				if !b.CanAccept(addr, size) {
					now += 100
					for _, d := range b.Expire(now) {
						applyEntry(&d, got)
					}
				}
			}
			if b.CanAccept(addr, size) {
				b.Insert(0, addr, size, data)
				ref.WriteAt(addr, data)
			}
			if o.Drain {
				if e := b.NextDrain(); e >= 0 {
					b.MarkIssued(e, now+2)
				}
			}
		}
		drainAllInto(b, got, now+1000)
		a := make([]byte, 1024)
		w := make([]byte, 1024)
		got.ReadAt(0, a)
		ref.ReadAt(0, w)
		return string(a) == string(w)
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(func(ops []op) bool { return check(ops, true) }, cfg); err != nil {
		t.Errorf("combining: %v", err)
	}
	if err := quick.Check(func(ops []op) bool { return check(ops, false) }, cfg); err != nil {
		t.Errorf("non-combining: %v", err)
	}
}
