package core

import "testing"

// TestStoreBufferDrainDoesNotAllocate guards the store-drain hot path: a
// warm insert→drain→expire cycle must never touch the heap. The scratch
// slice returned by Expire is reused across cycles, and entries compact in
// place, so the only allocations are the two capacity-sized slices made by
// NewStoreBuffer.
func TestStoreBufferDrainDoesNotAllocate(t *testing.T) {
	b := NewStoreBuffer(8, 8, true)
	cycle := uint64(0)
	drain := func() {
		// Two stores to distinct chunks, one combining store, then issue
		// and expire everything — the full per-cycle drain pattern.
		b.Insert(cycle, 0x1000, 8, nil)
		b.Insert(cycle, 0x2000, 8, nil)
		b.Insert(cycle, 0x1000, 8, nil)
		for {
			e := b.NextDrain()
			if e < 0 {
				break
			}
			b.MarkIssued(e, cycle+2)
		}
		cycle += 3
		b.Expire(cycle)
		b.SampleOccupancy()
	}
	// Warm up so the entries/expired slices reach steady capacity.
	for i := 0; i < 64; i++ {
		drain()
	}
	if avg := testing.AllocsPerRun(1000, drain); avg != 0 {
		t.Errorf("store-buffer drain allocates %v objects/cycle; want 0", avg)
	}
}

// TestMemPortCycleDoesNotAllocate drives a warm MemPort through full cycles
// of loads and committed stores and asserts zero steady-state allocations,
// covering the arbiter, the line buffers, the store buffer, and the cache
// hierarchy underneath (MSHR slices included) in one measurement.
func TestMemPortCycleDoesNotAllocate(t *testing.T) {
	p, _ := newPort(t, bestSingle())
	cycle := uint64(0)
	addr := uint64(0)
	oneCycle := func() {
		p.BeginCycle(cycle)
		// A striding load mix: some line-buffer hits, some misses that
		// exercise the fill and MSHR paths.
		p.TryLoad(cycle, 0x10000+(addr&0xffff), 8)
		p.TryLoad(cycle, 0x40000+((addr*7)&0x1ffff), 8)
		p.TryCommitStore(cycle, 0x80000+((addr*3)&0xffff), 8)
		addr += 8
		p.EndCycle(cycle)
		p.FinishCycle()
		cycle++
	}
	for i := 0; i < 50_000; i++ {
		oneCycle()
	}
	if avg := testing.AllocsPerRun(5000, oneCycle); avg != 0 {
		t.Errorf("MemPort cycle allocates %v objects/cycle in steady state; want 0", avg)
	}
}
