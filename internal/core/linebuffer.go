// Package core implements the paper's contribution: the machinery that
// raises the efficiency of a single data-cache port to near dual-port
// performance. Three cooperating mechanisms are provided:
//
//   - LineBufferSet ("load-all"): when a load uses a wide cache port, the
//     entire aligned port-width chunk is read out and latched; subsequent
//     loads that hit a latched chunk are satisfied without consuming a port.
//   - StoreBuffer: a decoupling buffer between instruction commit and the
//     cache port that smooths store bursts and, with combining enabled,
//     coalesces stores to the same aligned chunk so one port write retires
//     several program stores.
//   - MemPort: the per-cycle port arbiter that ties the two to the cache
//     hierarchy, giving loads priority and draining stores into idle port
//     slots.
package core

// LineBufferSet is a small fully associative set of load-all buffers. Each
// buffer holds the address of one aligned chunk of port-width bytes plus the
// cycle at which its data became available. Replacement is true LRU.
//
// Coherence: the set must be invalidated on (a) any store to a latched chunk
// and (b) replacement of the underlying cache line; MemPort wires both. The
// buffers therefore never supply stale data — a property checked by the
// package tests against a functional cache.
type LineBufferSet struct {
	chunkBytes uint64
	entries    []lineBuffer
	clock      uint64

	hits, fills, invalidations, misses uint64
}

type lineBuffer struct {
	chunkAddr uint64
	readyAt   uint64
	lru       uint64
	valid     bool
}

// NewLineBufferSet returns a set of n load-all buffers for chunkBytes-wide
// ports. n == 0 yields a disabled set on which Lookup always misses; that is
// the baseline (no load-all) configuration.
func NewLineBufferSet(n int, chunkBytes int) *LineBufferSet {
	if n < 0 {
		n = 0
	}
	return &LineBufferSet{
		chunkBytes: uint64(chunkBytes),
		entries:    make([]lineBuffer, n),
	}
}

// ChunkAddr returns addr rounded down to its aligned port-width chunk.
func (s *LineBufferSet) ChunkAddr(addr uint64) uint64 { return addr &^ (s.chunkBytes - 1) }

// Lookup probes the set for the chunk containing addr. On a hit it refreshes
// LRU state and returns the cycle the chunk's data became (or becomes)
// available; the caller takes max(now, readyAt) as the load's data-ready
// time. Accesses are at most 8 bytes and naturally aligned, so they never
// cross a chunk boundary.
func (s *LineBufferSet) Lookup(addr uint64) (readyAt uint64, hit bool) {
	chunk := s.ChunkAddr(addr)
	for i := range s.entries {
		e := &s.entries[i]
		if e.valid && e.chunkAddr == chunk {
			s.clock++
			e.lru = s.clock
			s.hits++
			return e.readyAt, true
		}
	}
	s.misses++
	return 0, false
}

// Fill latches the chunk containing addr, with its data available at
// readyAt, replacing the LRU buffer. Filling an already-latched chunk just
// refreshes it. Fill is a no-op on a disabled set.
func (s *LineBufferSet) Fill(addr, readyAt uint64) {
	if len(s.entries) == 0 {
		return
	}
	chunk := s.ChunkAddr(addr)
	s.clock++
	victim := 0
	for i := range s.entries {
		e := &s.entries[i]
		if e.valid && e.chunkAddr == chunk {
			e.readyAt = readyAt
			e.lru = s.clock
			return
		}
		if !e.valid {
			victim = i
			continue
		}
		if s.entries[victim].valid && e.lru < s.entries[victim].lru {
			victim = i
		}
	}
	s.entries[victim] = lineBuffer{chunkAddr: chunk, readyAt: readyAt, lru: s.clock, valid: true}
	s.fills++
}

// InvalidateChunk drops the buffer latching the chunk that contains addr, if
// any. Called for every store that enters the store buffer.
func (s *LineBufferSet) InvalidateChunk(addr uint64) {
	chunk := s.ChunkAddr(addr)
	for i := range s.entries {
		e := &s.entries[i]
		if e.valid && e.chunkAddr == chunk {
			e.valid = false
			s.invalidations++
			return
		}
	}
}

// InvalidateLine drops every buffer whose chunk lies inside the cache line
// [lineAddr, lineAddr+lineBytes). Called from the L1D eviction hook.
func (s *LineBufferSet) InvalidateLine(lineAddr uint64, lineBytes int) {
	end := lineAddr + uint64(lineBytes)
	for i := range s.entries {
		e := &s.entries[i]
		if e.valid && e.chunkAddr >= lineAddr && e.chunkAddr < end {
			e.valid = false
			s.invalidations++
		}
	}
}

// InvalidateAll empties the set (used at kernel entry in OS-disruption
// experiments and by tests).
func (s *LineBufferSet) InvalidateAll() {
	for i := range s.entries {
		if s.entries[i].valid {
			s.entries[i].valid = false
			s.invalidations++
		}
	}
}

// Reset empties the set and zeroes the statistics, restoring the
// just-constructed state (unlike InvalidateAll, which counts the
// invalidations as simulated events).
func (s *LineBufferSet) Reset() {
	clear(s.entries)
	s.clock = 0
	s.hits, s.fills, s.invalidations, s.misses = 0, 0, 0, 0
}

// Size returns the number of buffers.
func (s *LineBufferSet) Size() int { return len(s.entries) }

// Live returns the number of currently valid buffers.
func (s *LineBufferSet) Live() int {
	n := 0
	for i := range s.entries {
		if s.entries[i].valid {
			n++
		}
	}
	return n
}

// Hits, Misses, Fills and Invalidations return statistics.
func (s *LineBufferSet) Hits() uint64          { return s.hits }
func (s *LineBufferSet) Misses() uint64        { return s.misses }
func (s *LineBufferSet) Fills() uint64         { return s.fills }
func (s *LineBufferSet) Invalidations() uint64 { return s.invalidations }

// HitRate returns hits/(hits+misses), zero when unused.
func (s *LineBufferSet) HitRate() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}
