// Package core implements the paper's contribution: the machinery that
// raises the efficiency of a single data-cache port to near dual-port
// performance. Three cooperating mechanisms are provided:
//
//   - LineBufferSet ("load-all"): when a load uses a wide cache port, the
//     entire aligned port-width chunk is read out and latched; subsequent
//     loads that hit a latched chunk are satisfied without consuming a port.
//   - StoreBuffer: a decoupling buffer between instruction commit and the
//     cache port that smooths store bursts and, with combining enabled,
//     coalesces stores to the same aligned chunk so one port write retires
//     several program stores.
//   - MemPort: the per-cycle port arbiter that ties the two to the cache
//     hierarchy, giving loads priority and draining stores into idle port
//     slots.
package core

// LineBufferSet is a small fully associative set of load-all buffers. Each
// buffer holds the address of one aligned chunk of port-width bytes plus the
// cycle at which its data became available. Replacement is true LRU.
//
// The per-buffer state is held as parallel arrays (struct-of-arrays) rather
// than a slice of buffer structs: Lookup — the per-load hot path — scans
// only the chunk addresses and validity bits, so the probe walks two dense
// arrays instead of striding over four-field records it mostly ignores.
//
// Coherence: the set must be invalidated on (a) any store to a latched chunk
// and (b) replacement of the underlying cache line; MemPort wires both. The
// buffers therefore never supply stale data — a property checked by the
// package tests against a functional cache.
type LineBufferSet struct {
	chunkBytes uint64

	// Parallel per-buffer state; every slice has the same length (the
	// buffer count) and index i describes buffer i.
	chunkAddr []uint64
	readyAt   []uint64
	lru       []uint64
	valid     []bool

	clock uint64

	hits, fills, invalidations, misses uint64
}

// NewLineBufferSet returns a set of n load-all buffers for chunkBytes-wide
// ports. n == 0 yields a disabled set on which Lookup always misses; that is
// the baseline (no load-all) configuration.
func NewLineBufferSet(n int, chunkBytes int) *LineBufferSet {
	if n < 0 {
		n = 0
	}
	return &LineBufferSet{
		chunkBytes: uint64(chunkBytes),
		chunkAddr:  make([]uint64, n),
		readyAt:    make([]uint64, n),
		lru:        make([]uint64, n),
		valid:      make([]bool, n),
	}
}

// ChunkAddr returns addr rounded down to its aligned port-width chunk.
func (s *LineBufferSet) ChunkAddr(addr uint64) uint64 { return addr &^ (s.chunkBytes - 1) }

// Lookup probes the set for the chunk containing addr. On a hit it refreshes
// LRU state and returns the cycle the chunk's data became (or becomes)
// available; the caller takes max(now, readyAt) as the load's data-ready
// time. Accesses are at most 8 bytes and naturally aligned, so they never
// cross a chunk boundary.
//
//portlint:hotpath
func (s *LineBufferSet) Lookup(addr uint64) (readyAt uint64, hit bool) {
	chunk := s.ChunkAddr(addr)
	for i := range s.chunkAddr {
		if s.valid[i] && s.chunkAddr[i] == chunk {
			s.clock++
			s.lru[i] = s.clock
			s.hits++
			return s.readyAt[i], true
		}
	}
	s.misses++
	return 0, false
}

// Fill latches the chunk containing addr, with its data available at
// readyAt, replacing the LRU buffer. Filling an already-latched chunk just
// refreshes it. Fill is a no-op on a disabled set.
//
//portlint:hotpath
func (s *LineBufferSet) Fill(addr, readyAt uint64) {
	if len(s.chunkAddr) == 0 {
		return
	}
	chunk := s.ChunkAddr(addr)
	s.clock++
	victim := 0
	for i := range s.chunkAddr {
		if s.valid[i] && s.chunkAddr[i] == chunk {
			s.readyAt[i] = readyAt
			s.lru[i] = s.clock
			return
		}
		if !s.valid[i] {
			victim = i
			continue
		}
		if s.valid[victim] && s.lru[i] < s.lru[victim] {
			victim = i
		}
	}
	s.chunkAddr[victim] = chunk
	s.readyAt[victim] = readyAt
	s.lru[victim] = s.clock
	s.valid[victim] = true
	s.fills++
}

// InvalidateChunk drops the buffer latching the chunk that contains addr, if
// any. Called for every store that enters the store buffer.
//
//portlint:hotpath
func (s *LineBufferSet) InvalidateChunk(addr uint64) {
	chunk := s.ChunkAddr(addr)
	for i := range s.chunkAddr {
		if s.valid[i] && s.chunkAddr[i] == chunk {
			s.valid[i] = false
			s.invalidations++
			return
		}
	}
}

// InvalidateLine drops every buffer whose chunk lies inside the cache line
// [lineAddr, lineAddr+lineBytes). Called from the L1D eviction hook.
//
//portlint:hotpath
func (s *LineBufferSet) InvalidateLine(lineAddr uint64, lineBytes int) {
	end := lineAddr + uint64(lineBytes)
	for i := range s.chunkAddr {
		if s.valid[i] && s.chunkAddr[i] >= lineAddr && s.chunkAddr[i] < end {
			s.valid[i] = false
			s.invalidations++
		}
	}
}

// InvalidateAll empties the set (used at kernel entry in OS-disruption
// experiments and by tests).
func (s *LineBufferSet) InvalidateAll() {
	for i := range s.valid {
		if s.valid[i] {
			s.valid[i] = false
			s.invalidations++
		}
	}
}

// NextEvent reports the soonest cycle after now at which a pending fill's
// data becomes available in some buffer, or NeverEvent when every latched
// chunk is already readable. Line-buffer fills have no effect until a load
// looks one up, so this only ever shortens a skip, never invalidates one.
//
//portlint:hotpath
func (s *LineBufferSet) NextEvent(now uint64) uint64 {
	next := NeverEvent
	for i := range s.readyAt {
		if s.valid[i] && s.readyAt[i] > now && s.readyAt[i] < next {
			next = s.readyAt[i]
		}
	}
	return next
}

// Reset empties the set and zeroes the statistics, restoring the
// just-constructed state (unlike InvalidateAll, which counts the
// invalidations as simulated events).
func (s *LineBufferSet) Reset() {
	clear(s.chunkAddr)
	clear(s.readyAt)
	clear(s.lru)
	clear(s.valid)
	s.clock = 0
	s.hits, s.fills, s.invalidations, s.misses = 0, 0, 0, 0
}

// Size returns the number of buffers.
func (s *LineBufferSet) Size() int { return len(s.chunkAddr) }

// Live returns the number of currently valid buffers.
func (s *LineBufferSet) Live() int {
	n := 0
	for i := range s.valid {
		if s.valid[i] {
			n++
		}
	}
	return n
}

// Hits, Misses, Fills and Invalidations return statistics.
func (s *LineBufferSet) Hits() uint64          { return s.hits }
func (s *LineBufferSet) Misses() uint64        { return s.misses }
func (s *LineBufferSet) Fills() uint64         { return s.fills }
func (s *LineBufferSet) Invalidations() uint64 { return s.invalidations }

// HitRate returns hits/(hits+misses), zero when unused.
func (s *LineBufferSet) HitRate() float64 {
	total := s.hits + s.misses
	if total == 0 {
		return 0
	}
	return float64(s.hits) / float64(total)
}
