package core

import "math"

// NeverEvent is the NextEvent answer of a subsystem with nothing in flight:
// no cycle before NeverEvent carries an autonomous state change.
const NeverEvent uint64 = math.MaxUint64

// NextEventer is the event-driven clock contract. A subsystem implementing
// it promises: given the current cycle `now`, every cycle in the half-open
// interval [now, NextEvent(now)) is inert from its perspective — the
// subsystem neither changes observable state nor produces counters that
// differ from an idle cycle's, so the caller may fast-forward the clock to
// the returned cycle without stepping through the gap. Returning a value at
// or below now means "this very cycle may be active; do not skip".
// Returning NeverEvent means the subsystem never acts on its own.
//
// The invariant is one-sided: returning an EARLIER cycle than the true next
// event is always safe (the caller merely wakes early and asks again), while
// returning a later one silently corrupts the simulation. Implementations
// therefore err toward conservatism: anything queued for "as soon as
// possible" reports now, not now+1.
//
// Implemented by MemPort and LineBufferSet here, and by mem.System
// structurally (mem cannot import core, so that assertion lives in
// internal/cpu). StoreBuffer feeds MemPort's answer through its expiry and
// drain-eligibility events rather than implementing the interface itself:
// whether a drainable entry may act depends on port policy (the injected
// drain wedge) the buffer cannot see.
type NextEventer interface {
	NextEvent(now uint64) uint64
}

var (
	_ NextEventer = (*MemPort)(nil)
	_ NextEventer = (*LineBufferSet)(nil)
)
