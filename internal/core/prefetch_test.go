package core

import (
	"testing"

	"portsim/internal/config"
)

func prefetchPorts() config.Ports {
	p := singleNarrow()
	p.PrefetchNextLine = true
	p.PrefetchDegree = 1
	return p
}

func TestPrefetchConfigValidation(t *testing.T) {
	m := config.Baseline()
	m.Ports.PrefetchNextLine = true
	m.Ports.PrefetchDegree = 0
	if err := m.Validate(); err == nil {
		t.Error("prefetch without degree accepted")
	}
	m.Ports.PrefetchDegree = 9
	if err := m.Validate(); err == nil {
		t.Error("oversized prefetch degree accepted")
	}
	m.Ports.PrefetchDegree = 2
	if err := m.Validate(); err != nil {
		t.Errorf("valid prefetch config rejected: %v", err)
	}
	m = config.Baseline()
	m.Ports.PrefetchDegree = 2 // without enabling
	if err := m.Validate(); err == nil {
		t.Error("degree without enable accepted")
	}
}

func TestPrefetchIssuesIntoIdleSlots(t *testing.T) {
	p, sys := newPort(t, prefetchPorts())
	p.BeginCycle(0)
	p.TryLoad(0, 0x1000, 8) // miss on line 0x1000: queues 0x1020
	p.EndCycle(0)           // port already used by the load this cycle
	p.FinishCycle()
	p.BeginCycle(1)
	p.EndCycle(1) // idle slot: prefetch issues
	p.FinishCycle()
	if got := p.prefetches; got != 1 {
		t.Fatalf("prefetches = %d, want 1", got)
	}
	// After the fill lands, the next line is resident without any demand
	// access having touched it.
	p.BeginCycle(100000)
	if !sys.L1D.Contains(0x1020) {
		t.Error("prefetched line not resident")
	}
}

func TestPrefetchHasLowestPriority(t *testing.T) {
	p, _ := newPort(t, prefetchPorts())
	p.BeginCycle(0)
	p.TryLoad(0, 0x1000, 8) // queues a prefetch
	p.EndCycle(0)
	p.FinishCycle()
	// Next cycle: a demand load takes the single port; the prefetch must
	// wait.
	p.BeginCycle(1)
	p.TryLoad(1, 0x9000, 8)
	p.EndCycle(1)
	p.FinishCycle()
	if p.prefetches != 0 {
		t.Fatal("prefetch stole the port from a demand load")
	}
	p.BeginCycle(2)
	p.EndCycle(2)
	if p.prefetches != 1 {
		t.Fatal("prefetch did not issue into the idle cycle")
	}
}

func TestPrefetchUsefulnessCounting(t *testing.T) {
	p, _ := newPort(t, prefetchPorts())
	p.BeginCycle(0)
	p.TryLoad(0, 0x1000, 8)
	p.EndCycle(0)
	p.FinishCycle()
	p.BeginCycle(1)
	p.EndCycle(1) // issues prefetch of 0x1020
	p.FinishCycle()
	// Run the clock forward so the fills land and their refill bandwidth
	// is fully paid, then demand-load the prefetched line.
	for cyc := uint64(2); cyc < 1000; cyc++ {
		p.BeginCycle(cyc)
		p.EndCycle(cyc)
		p.FinishCycle()
	}
	now := uint64(1000)
	p.BeginCycle(now)
	r := p.TryLoad(now, 0x1020, 8)
	if !r.Accepted {
		t.Fatal("demand load refused")
	}
	if p.usefulPrefetch != 1 {
		t.Errorf("useful prefetches = %d, want 1", p.usefulPrefetch)
	}
}

func TestPrefetchDropsResidentLines(t *testing.T) {
	p, sys := newPort(t, prefetchPorts())
	// Install the next line directly so no prefetch traffic is queued by
	// the warm-up itself.
	sys.L1D.Install(0x1000, false)
	// Miss a line whose next line is already resident: the prefetch for
	// it must be dropped without consuming a slot.
	p.BeginCycle(0)
	p.TryLoad(0, 0xfe0, 8) // queues prefetch of 0x1000 (resident)
	p.EndCycle(0)
	p.FinishCycle()
	p.BeginCycle(1)
	p.EndCycle(1)
	p.FinishCycle()
	if p.prefetches != 0 {
		t.Error("prefetch of a resident line consumed a port slot")
	}
}

func TestPrefetchDisabledByDefault(t *testing.T) {
	p, _ := newPort(t, singleNarrow())
	p.BeginCycle(0)
	p.TryLoad(0, 0x1000, 8)
	p.EndCycle(0)
	p.FinishCycle()
	p.BeginCycle(1)
	p.EndCycle(1)
	if p.prefetches != 0 {
		t.Error("prefetches issued with the feature disabled")
	}
}
