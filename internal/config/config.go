// Package config defines the machine configuration consumed by the
// simulator: core width and structure sizes, branch prediction, cache
// hierarchy geometry, memory timing, and — the experimental variables of the
// paper — the data-cache port arrangement and the port-efficiency features
// (decoupling store buffer, wide port, load-all line buffers, store
// combining).
package config

import (
	"encoding/json"
	"fmt"
)

// Core configures the dynamic superscalar core.
type Core struct {
	// FetchWidth is the maximum instructions fetched per cycle.
	FetchWidth int `json:"fetch_width"`
	// DecodeWidth is the maximum instructions renamed/dispatched per cycle.
	DecodeWidth int `json:"decode_width"`
	// IssueWidth is the maximum instructions issued to functional units
	// per cycle (across all queues).
	IssueWidth int `json:"issue_width"`
	// CommitWidth is the maximum instructions retired per cycle.
	CommitWidth int `json:"commit_width"`
	// ROBEntries sizes the reorder buffer.
	ROBEntries int `json:"rob_entries"`
	// IntIQEntries and FPIQEntries size the integer and floating-point
	// issue queues. Memory operations wait in the load/store queues.
	IntIQEntries int `json:"int_iq_entries"`
	FPIQEntries  int `json:"fp_iq_entries"`
	// LoadQueueEntries and StoreQueueEntries size the load/store queues.
	LoadQueueEntries  int `json:"load_queue_entries"`
	StoreQueueEntries int `json:"store_queue_entries"`
	// IntPhysRegs and FPPhysRegs size the physical register files.
	IntPhysRegs int `json:"int_phys_regs"`
	FPPhysRegs  int `json:"fp_phys_regs"`
	// IntALUs, IntMulDivs, FPAdders, FPMulDivs count functional units.
	IntALUs    int `json:"int_alus"`
	IntMulDivs int `json:"int_muldivs"`
	FPAdders   int `json:"fp_adders"`
	FPMulDivs  int `json:"fp_muldivs"`
	// MemIssuePerCycle is the maximum memory operations selected from the
	// load/store queues into the memory system per cycle (the processor
	// side; the cache-port arbiter further constrains what reaches the
	// cache arrays).
	MemIssuePerCycle int `json:"mem_issue_per_cycle"`
	// MispredictPenalty is the fetch-redirect bubble in cycles charged
	// when a branch misprediction resolves.
	MispredictPenalty int `json:"mispredict_penalty"`
	// WrongPathFetch models the instruction-cache pollution of fetching
	// down the mispredicted path while a branch resolves: each stalled
	// cycle fetches one wrong-path line into the L1I. Off by default (the
	// trace-driven baseline treats mispredict stalls as idle).
	WrongPathFetch bool `json:"wrong_path_fetch"`
	// SpeculativeLoads lets loads issue past older stores whose addresses
	// are still unknown (memory-dependence speculation). A store that
	// later resolves onto a speculatively issued younger load squashes
	// the pipeline for ViolationPenalty cycles.
	SpeculativeLoads bool `json:"speculative_loads"`
	// ViolationPenalty is the squash cost of a memory-order violation.
	ViolationPenalty int `json:"violation_penalty"`
}

// Latencies gives functional-unit execution latencies in cycles.
type Latencies struct {
	IntALU int `json:"int_alu"`
	IntMul int `json:"int_mul"`
	IntDiv int `json:"int_div"`
	FPAdd  int `json:"fp_add"`
	FPMul  int `json:"fp_mul"`
	FPDiv  int `json:"fp_div"`
	// AGen is the address-generation latency charged to memory operations
	// before they may access the memory system.
	AGen int `json:"agen"`
}

// Predictor configures branch prediction.
type Predictor struct {
	// Kind selects the predictor: "gshare", "bimodal" or "static".
	Kind string `json:"kind"`
	// TableEntries sizes the pattern-history table (power of two).
	TableEntries int `json:"table_entries"`
	// HistoryBits is the global-history length for gshare.
	HistoryBits int `json:"history_bits"`
	// BTBEntries and BTBAssoc size the branch target buffer.
	BTBEntries int `json:"btb_entries"`
	BTBAssoc   int `json:"btb_assoc"`
	// RASEntries sizes the return-address stack.
	RASEntries int `json:"ras_entries"`
}

// CacheGeom configures one cache level.
type CacheGeom struct {
	// SizeBytes is the total capacity.
	SizeBytes int `json:"size_bytes"`
	// Assoc is the set associativity.
	Assoc int `json:"assoc"`
	// LineBytes is the line size.
	LineBytes int `json:"line_bytes"`
	// HitLatency is the access latency in cycles on a hit.
	HitLatency int `json:"hit_latency"`
	// MSHRs is the number of outstanding-miss registers (0 disables the
	// limit, modelling an unbounded non-blocking cache).
	MSHRs int `json:"mshrs"`
	// WriteThrough switches the level to write-through, no-write-allocate
	// (only supported on the L1 data cache). Stores update the line if
	// present but never dirty it, and propagate to the next level; store
	// misses do not allocate. The design point where combining write
	// buffers were historically essential.
	WriteThrough bool `json:"write_through"`
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeom) Sets() int { return g.SizeBytes / (g.Assoc * g.LineBytes) }

// TLB configures one translation lookaside buffer. Entries == 0 disables
// translation modelling.
type TLB struct {
	// Entries is the number of fully associative entries.
	Entries int `json:"entries"`
	// PageBits is log2 of the page size.
	PageBits int `json:"page_bits"`
	// MissPenalty is the page-walk latency in cycles.
	MissPenalty int `json:"miss_penalty"`
}

// Memory configures the levels below the L1 data/instruction caches.
type Memory struct {
	L2 CacheGeom `json:"l2"`
	// DRAMLatency is the access latency of main memory in cycles.
	DRAMLatency int `json:"dram_latency"`
	// DRAMInterval is the minimum cycles between successive DRAM refills,
	// modelling finite memory bandwidth.
	DRAMInterval int `json:"dram_interval"`
}

// Ports configures the L1 data-cache port arrangement and the paper's
// port-efficiency techniques. This block carries every experimental variable
// of the reproduction.
type Ports struct {
	// Count is the number of independent cache ports; the paper compares
	// 1, 2 and 4. Each port accepts one access per cycle.
	Count int `json:"count"`
	// Banks line-interleaves the data array into this many single-ported
	// banks (1 or 0 disables banking). Banking is the classic cheap
	// alternative to true multi-porting the paper's techniques compete
	// with: up to Banks accesses proceed per cycle when they target
	// distinct banks, but same-bank accesses conflict. Banking requires
	// Count == 1 (the banks replace the ports).
	Banks int `json:"banks"`
	// WidthBytes is the width of each port. A port wider than the access
	// being made can, with LineBuffers > 0, fetch the whole aligned chunk
	// ("load-all") so later loads to the chunk skip the port entirely.
	WidthBytes int `json:"width_bytes"`
	// StoreBufferEntries is the depth of the decoupling store buffer
	// between commit and the cache port. Committed stores wait here; the
	// buffer drains opportunistically when a port is free.
	StoreBufferEntries int `json:"store_buffer_entries"`
	// StoreCombining enables coalescing of stores to the same aligned
	// WidthBytes chunk inside the store buffer, retiring several program
	// stores with one port write.
	StoreCombining bool `json:"store_combining"`
	// LineBuffers is the number of load-all line buffers (0 disables the
	// technique). Each holds one aligned WidthBytes chunk.
	LineBuffers int `json:"line_buffers"`
	// FillBytesPerCycle is the width of the L1 fill path from the L2 (a
	// refill or victim read-out occupies a port for LineBytes divided by
	// this many bytes each cycle). It is a property of the cache arrays
	// and fill buffers, common to every port arrangement, NOT of the
	// CPU-visible port width the paper varies.
	FillBytesPerCycle int `json:"fill_bytes_per_cycle"`
	// StoresCheckLineBuffers controls whether stores invalidate matching
	// line buffers (required for correctness whenever LineBuffers > 0;
	// exposed so tests can exercise the invariant).
	StoresCheckLineBuffers bool `json:"stores_check_line_buffers"`
	// StoresFirst inverts the port arbitration: the store buffer drains
	// before loads claim ports each cycle, instead of into leftover slots.
	// The paper gives loads priority; this switch exists for the A7
	// ablation that justifies that choice.
	StoresFirst bool `json:"stores_first"`
	// PrefetchNextLine enables sequential next-line prefetching on L1D
	// load misses (extension experiment A3). Prefetch probes have the
	// lowest port priority: they only use slots that loads, store drains
	// and refills leave idle — so prefetching interacts directly with the
	// port-bandwidth question the paper studies.
	PrefetchNextLine bool `json:"prefetch_next_line"`
	// PrefetchDegree is how many sequential lines each miss prefetches.
	PrefetchDegree int `json:"prefetch_degree"`
	// FaultStuckDrain is a fault-injection knob for robustness testing,
	// not a machine feature: when set, the store buffer never drains, so
	// it fills, commit wedges behind the oldest store, and the forward-
	// progress watchdog must catch and diagnose the stall. It lives in
	// the configuration (rather than test scaffolding) so a repro bundle
	// carries the wedge with it and replays identically.
	FaultStuckDrain bool `json:"fault_stuck_drain,omitempty"`
}

// Machine is the complete configuration of one simulated machine.
type Machine struct {
	Name  string    `json:"name"`
	Core  Core      `json:"core"`
	Lat   Latencies `json:"latencies"`
	Pred  Predictor `json:"predictor"`
	L1I   CacheGeom `json:"l1i"`
	L1D   CacheGeom `json:"l1d"`
	ITLB  TLB       `json:"itlb"`
	DTLB  TLB       `json:"dtlb"`
	Mem   Memory    `json:"memory"`
	Ports Ports     `json:"ports"`
}

// Baseline returns the R10000-class machine used throughout the paper's
// evaluation, with a single 8-byte data-cache port and none of the
// port-efficiency techniques enabled. Experiments start here and toggle
// fields in Ports.
func Baseline() Machine {
	return Machine{
		Name: "baseline-1port",
		Core: Core{
			FetchWidth:        4,
			DecodeWidth:       4,
			IssueWidth:        6,
			CommitWidth:       4,
			ROBEntries:        64,
			IntIQEntries:      32,
			FPIQEntries:       32,
			LoadQueueEntries:  16,
			StoreQueueEntries: 16,
			IntPhysRegs:       96,
			FPPhysRegs:        96,
			IntALUs:           2,
			IntMulDivs:        1,
			FPAdders:          1,
			FPMulDivs:         1,
			MemIssuePerCycle:  2,
			MispredictPenalty: 4,
		},
		Lat: Latencies{
			IntALU: 1, IntMul: 4, IntDiv: 20,
			FPAdd: 2, FPMul: 3, FPDiv: 18,
			AGen: 1,
		},
		Pred: Predictor{
			Kind:         "gshare",
			TableEntries: 4096,
			HistoryBits:  10,
			BTBEntries:   512,
			BTBAssoc:     4,
			RASEntries:   8,
		},
		L1I:  CacheGeom{SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLatency: 1, MSHRs: 4},
		L1D:  CacheGeom{SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32, HitLatency: 1, MSHRs: 8},
		ITLB: TLB{Entries: 48, PageBits: 12, MissPenalty: 20},
		DTLB: TLB{Entries: 64, PageBits: 12, MissPenalty: 20},
		Mem: Memory{
			L2:           CacheGeom{SizeBytes: 1 << 20, Assoc: 4, LineBytes: 64, HitLatency: 8, MSHRs: 8},
			DRAMLatency:  35,
			DRAMInterval: 6,
		},
		Ports: Ports{
			Count:                  1,
			WidthBytes:             8,
			StoreBufferEntries:     2,
			StoreCombining:         false,
			LineBuffers:            0,
			FillBytesPerCycle:      16,
			StoresCheckLineBuffers: true,
		},
	}
}

// DualPort returns the dual-ported comparison machine: two 8-byte cache
// ports with the same deep store buffer the proposed design gets. This is
// the paper's expensive, well-provisioned reference design.
func DualPort() Machine {
	m := Baseline()
	m.Name = "dual-port"
	m.Ports.Count = 2
	m.Ports.StoreBufferEntries = 16
	return m
}

// QuadPort returns an idealised four-ported machine, the upper bound used to
// motivate the study.
func QuadPort() Machine {
	m := DualPort()
	m.Name = "quad-port"
	m.Ports.Count = 4
	return m
}

// BestSingle returns the paper's proposed design: a single wide (16-byte)
// port with a deep combining store buffer and load-all line buffers. This is
// the configuration behind the headline "91% of dual-port" result.
func BestSingle() Machine {
	m := Baseline()
	m.Name = "best-single"
	m.Ports = Ports{
		Count:                  1,
		WidthBytes:             16,
		StoreBufferEntries:     16,
		StoreCombining:         true,
		LineBuffers:            2,
		FillBytesPerCycle:      16,
		StoresCheckLineBuffers: true,
	}
	return m
}

// Banked returns a machine whose data array is split into n line-
// interleaved single-ported banks — the cheap multi-porting alternative the
// paper's techniques are compared against.
func Banked(n int) Machine {
	m := Baseline()
	m.Name = fmt.Sprintf("banked-%d", n)
	m.Ports.Banks = n
	return m
}

// Presets maps preset names to constructors, for the CLIs.
var Presets = map[string]func() Machine{
	"baseline":    Baseline,
	"dual-port":   DualPort,
	"quad-port":   QuadPort,
	"best-single": BestSingle,
	"banked-2":    func() Machine { return Banked(2) },
	"banked-4":    func() Machine { return Banked(4) },
	"banked-8":    func() Machine { return Banked(8) },
}

// PresetNames returns the preset names in a fixed, documented order.
func PresetNames() []string {
	return []string{"baseline", "dual-port", "quad-port", "best-single", "banked-2", "banked-4", "banked-8"}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// validateGeom checks one cache level's geometry.
func validateGeom(what string, g CacheGeom) error {
	switch {
	case g.SizeBytes <= 0 || g.Assoc <= 0 || g.LineBytes <= 0:
		return fmt.Errorf("config: %s: size, associativity and line size must be positive", what)
	case !isPow2(g.LineBytes):
		return fmt.Errorf("config: %s: line size %d is not a power of two", what, g.LineBytes)
	case g.SizeBytes%(g.Assoc*g.LineBytes) != 0:
		return fmt.Errorf("config: %s: size %d not divisible by assoc*line (%d)", what, g.SizeBytes, g.Assoc*g.LineBytes)
	case !isPow2(g.Sets()):
		return fmt.Errorf("config: %s: set count %d is not a power of two", what, g.Sets())
	case g.HitLatency < 1:
		return fmt.Errorf("config: %s: hit latency must be at least 1 cycle", what)
	case g.MSHRs < 0:
		return fmt.Errorf("config: %s: negative MSHR count", what)
	}
	return nil
}

// Validate checks the whole machine configuration for internal consistency
// and returns a descriptive error naming the first offending field.
func (m *Machine) Validate() error {
	c := &m.Core
	for _, f := range []struct {
		name string
		v    int
	}{
		{"fetch width", c.FetchWidth}, {"decode width", c.DecodeWidth},
		{"issue width", c.IssueWidth}, {"commit width", c.CommitWidth},
		{"ROB entries", c.ROBEntries},
		{"int IQ entries", c.IntIQEntries}, {"fp IQ entries", c.FPIQEntries},
		{"load queue entries", c.LoadQueueEntries}, {"store queue entries", c.StoreQueueEntries},
		{"int ALUs", c.IntALUs}, {"int mul/divs", c.IntMulDivs},
		{"fp adders", c.FPAdders}, {"fp mul/divs", c.FPMulDivs},
		{"memory issue per cycle", c.MemIssuePerCycle},
	} {
		if f.v <= 0 {
			return fmt.Errorf("config: core %s must be positive", f.name)
		}
	}
	if c.IntPhysRegs < 32+1 {
		return fmt.Errorf("config: %d integer physical registers cannot back 32 architectural", c.IntPhysRegs)
	}
	if c.FPPhysRegs < 32+1 {
		return fmt.Errorf("config: %d fp physical registers cannot back 32 architectural", c.FPPhysRegs)
	}
	if c.MispredictPenalty < 0 {
		return fmt.Errorf("config: negative mispredict penalty")
	}
	if c.SpeculativeLoads && c.ViolationPenalty < 1 {
		return fmt.Errorf("config: speculative loads need a positive violation penalty")
	}
	if !c.SpeculativeLoads && c.ViolationPenalty != 0 {
		return fmt.Errorf("config: violation penalty set without speculative loads")
	}
	l := &m.Lat
	for _, f := range []struct {
		name string
		v    int
	}{
		{"int alu", l.IntALU}, {"int mul", l.IntMul}, {"int div", l.IntDiv},
		{"fp add", l.FPAdd}, {"fp mul", l.FPMul}, {"fp div", l.FPDiv},
		{"agen", l.AGen},
	} {
		if f.v <= 0 {
			return fmt.Errorf("config: latency %s must be positive", f.name)
		}
	}
	switch m.Pred.Kind {
	case "gshare", "bimodal", "static":
	default:
		return fmt.Errorf("config: unknown predictor kind %q", m.Pred.Kind)
	}
	if m.Pred.Kind != "static" {
		if !isPow2(m.Pred.TableEntries) {
			return fmt.Errorf("config: predictor table entries %d not a power of two", m.Pred.TableEntries)
		}
		if m.Pred.Kind == "gshare" && (m.Pred.HistoryBits < 1 || m.Pred.HistoryBits > 30) {
			return fmt.Errorf("config: gshare history bits %d out of range", m.Pred.HistoryBits)
		}
	}
	if m.Pred.BTBEntries > 0 {
		if m.Pred.BTBAssoc <= 0 || m.Pred.BTBEntries%m.Pred.BTBAssoc != 0 || !isPow2(m.Pred.BTBEntries/m.Pred.BTBAssoc) {
			return fmt.Errorf("config: BTB geometry %d entries / %d-way invalid", m.Pred.BTBEntries, m.Pred.BTBAssoc)
		}
	}
	if m.Pred.RASEntries < 0 {
		return fmt.Errorf("config: negative RAS entries")
	}
	if err := validateGeom("L1I", m.L1I); err != nil {
		return err
	}
	if m.L1I.WriteThrough {
		return fmt.Errorf("config: write-through is only supported on the L1 data cache")
	}
	if m.Mem.L2.WriteThrough {
		return fmt.Errorf("config: write-through is only supported on the L1 data cache")
	}
	if err := validateGeom("L1D", m.L1D); err != nil {
		return err
	}
	for _, tl := range []struct {
		name string
		t    TLB
	}{{"ITLB", m.ITLB}, {"DTLB", m.DTLB}} {
		if tl.t.Entries < 0 {
			return fmt.Errorf("config: %s: negative entry count", tl.name)
		}
		if tl.t.Entries > 0 {
			if tl.t.PageBits < 10 || tl.t.PageBits > 30 {
				return fmt.Errorf("config: %s: page size 2^%d out of range", tl.name, tl.t.PageBits)
			}
			if tl.t.MissPenalty < 1 {
				return fmt.Errorf("config: %s: miss penalty must be positive", tl.name)
			}
		}
	}
	if err := validateGeom("L2", m.Mem.L2); err != nil {
		return err
	}
	if m.Mem.L2.LineBytes < m.L1D.LineBytes || m.Mem.L2.LineBytes%m.L1D.LineBytes != 0 {
		return fmt.Errorf("config: L2 line (%d) must be a multiple of L1D line (%d)", m.Mem.L2.LineBytes, m.L1D.LineBytes)
	}
	if m.Mem.DRAMLatency <= 0 || m.Mem.DRAMInterval < 0 {
		return fmt.Errorf("config: DRAM latency must be positive and interval non-negative")
	}
	p := &m.Ports
	if p.Count < 1 {
		return fmt.Errorf("config: at least one cache port required")
	}
	if p.Banks < 0 {
		return fmt.Errorf("config: negative bank count")
	}
	if p.Banks > 1 {
		if !isPow2(p.Banks) {
			return fmt.Errorf("config: bank count %d not a power of two", p.Banks)
		}
		if p.Count != 1 {
			return fmt.Errorf("config: banking replaces multi-porting; use Count=1 with Banks=%d", p.Banks)
		}
	}
	if !isPow2(p.WidthBytes) || p.WidthBytes < 8 {
		return fmt.Errorf("config: port width %d must be a power of two >= 8", p.WidthBytes)
	}
	if p.WidthBytes > m.L1D.LineBytes {
		return fmt.Errorf("config: port width %d exceeds L1D line size %d", p.WidthBytes, m.L1D.LineBytes)
	}
	if p.StoreBufferEntries < 1 {
		return fmt.Errorf("config: store buffer needs at least one entry")
	}
	if p.LineBuffers < 0 {
		return fmt.Errorf("config: negative line buffer count")
	}
	if !isPow2(p.FillBytesPerCycle) || p.FillBytesPerCycle < 8 {
		return fmt.Errorf("config: fill path width %d must be a power of two >= 8", p.FillBytesPerCycle)
	}
	if p.PrefetchNextLine && (p.PrefetchDegree < 1 || p.PrefetchDegree > 8) {
		return fmt.Errorf("config: prefetch degree %d out of range [1,8]", p.PrefetchDegree)
	}
	if !p.PrefetchNextLine && p.PrefetchDegree != 0 {
		return fmt.Errorf("config: prefetch degree set without enabling prefetch")
	}
	if p.LineBuffers > 0 && !p.StoresCheckLineBuffers {
		return fmt.Errorf("config: line buffers enabled without store invalidation checks; stale loads would result")
	}
	return nil
}

// MarshalJSON is provided by the embedded struct tags; ToJSON renders an
// indented form for the CLIs.
func (m *Machine) ToJSON() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// FromJSON parses a machine configuration and validates it.
func FromJSON(data []byte) (Machine, error) {
	var m Machine
	if err := json.Unmarshal(data, &m); err != nil {
		return Machine{}, fmt.Errorf("config: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Machine{}, err
	}
	return m, nil
}
