package config

import (
	"bytes"
	"testing"
)

// FuzzMachineValidate feeds arbitrary JSON through the configuration
// boundary the repro-bundle loader depends on: FromJSON must never panic,
// anything it accepts must Validate (it already validated once, but the
// invariant is what ParseBundle relies on), and an accepted machine must
// survive a ToJSON/FromJSON round trip unchanged — otherwise a repro bundle
// would not rebuild the failed cell exactly.
func FuzzMachineValidate(f *testing.F) {
	// Seed corpus: every preset, plus structural edge cases.
	for _, m := range []Machine{Baseline(), DualPort(), QuadPort(), BestSingle()} {
		m := m
		data, err := m.ToJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	wedged := Baseline()
	wedged.Ports.FaultStuckDrain = true
	if data, err := wedged.ToJSON(); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"name":"x"}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"core":{"rob_entries":-1}}`))
	f.Add([]byte(`{"ports":{"count":999,"width_bytes":3}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := FromJSON(data)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("FromJSON accepted a machine that fails Validate: %v\ninput: %s", verr, data)
		}
		out, err := m.ToJSON()
		if err != nil {
			t.Fatalf("accepted machine does not serialise: %v", err)
		}
		back, err := FromJSON(out)
		if err != nil {
			t.Fatalf("round trip rejected our own ToJSON output: %v\njson: %s", err, out)
		}
		out2, err := back.ToJSON()
		if err != nil {
			t.Fatalf("round-tripped machine does not serialise: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("ToJSON not stable across a round trip:\nfirst:  %s\nsecond: %s", out, out2)
		}
	})
}
