package config

import (
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for _, name := range PresetNames() {
		ctor, ok := Presets[name]
		if !ok {
			t.Fatalf("preset %q listed but not registered", name)
		}
		m := ctor()
		if err := m.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
		if m.Name == "" {
			t.Errorf("preset %q has empty machine name", name)
		}
	}
}

func TestPresetPortArrangements(t *testing.T) {
	if got := Baseline().Ports.Count; got != 1 {
		t.Errorf("baseline port count = %d, want 1", got)
	}
	if got := DualPort().Ports.Count; got != 2 {
		t.Errorf("dual-port port count = %d, want 2", got)
	}
	if got := QuadPort().Ports.Count; got != 4 {
		t.Errorf("quad-port port count = %d, want 4", got)
	}
	bs := BestSingle()
	if bs.Ports.Count != 1 || bs.Ports.WidthBytes <= 8 || !bs.Ports.StoreCombining || bs.Ports.LineBuffers == 0 {
		t.Errorf("best-single must be 1 wide combining port with line buffers, got %+v", bs.Ports)
	}
}

func TestPresetsShareSubstrate(t *testing.T) {
	// Everything except Name and Ports must be identical across presets so
	// that port experiments isolate the port variables (count, width,
	// buffering, banking).
	base := Baseline()
	for _, name := range PresetNames() {
		m := Presets[name]()
		m.Name = base.Name
		m.Ports = base.Ports
		if m != base {
			t.Errorf("preset %q differs from baseline outside Ports", name)
		}
	}
}

func TestCacheGeomSets(t *testing.T) {
	g := CacheGeom{SizeBytes: 32 << 10, Assoc: 2, LineBytes: 32}
	if got := g.Sets(); got != 512 {
		t.Errorf("Sets() = %d, want 512", got)
	}
}

func mutate(t *testing.T, f func(*Machine)) error {
	t.Helper()
	m := Baseline()
	f(&m)
	return m.Validate()
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		f    func(*Machine)
		frag string
	}{
		{"zero fetch width", func(m *Machine) { m.Core.FetchWidth = 0 }, "fetch width"},
		{"zero commit width", func(m *Machine) { m.Core.CommitWidth = 0 }, "commit width"},
		{"zero rob", func(m *Machine) { m.Core.ROBEntries = 0 }, "ROB"},
		{"too few int phys regs", func(m *Machine) { m.Core.IntPhysRegs = 32 }, "physical registers"},
		{"too few fp phys regs", func(m *Machine) { m.Core.FPPhysRegs = 10 }, "physical registers"},
		{"negative mispredict", func(m *Machine) { m.Core.MispredictPenalty = -1 }, "mispredict"},
		{"zero latency", func(m *Machine) { m.Lat.FPDiv = 0 }, "latency"},
		{"bad predictor", func(m *Machine) { m.Pred.Kind = "oracle" }, "predictor kind"},
		{"non-pow2 PHT", func(m *Machine) { m.Pred.TableEntries = 1000 }, "table entries"},
		{"history bits", func(m *Machine) { m.Pred.HistoryBits = 0 }, "history bits"},
		{"bad BTB", func(m *Machine) { m.Pred.BTBEntries = 100; m.Pred.BTBAssoc = 3 }, "BTB"},
		{"negative RAS", func(m *Machine) { m.Pred.RASEntries = -1 }, "RAS"},
		{"bad l1d line", func(m *Machine) { m.L1D.LineBytes = 24 }, "power of two"},
		{"zero l1i size", func(m *Machine) { m.L1I.SizeBytes = 0 }, "positive"},
		{"l1d latency", func(m *Machine) { m.L1D.HitLatency = 0 }, "hit latency"},
		{"l1d mshrs", func(m *Machine) { m.L1D.MSHRs = -2 }, "MSHR"},
		{"l2 line smaller than l1d", func(m *Machine) { m.Mem.L2.LineBytes = 16 }, "multiple"},
		{"dram latency", func(m *Machine) { m.Mem.DRAMLatency = 0 }, "DRAM"},
		{"zero ports", func(m *Machine) { m.Ports.Count = 0 }, "port"},
		{"narrow port", func(m *Machine) { m.Ports.WidthBytes = 4 }, "width"},
		{"non-pow2 port", func(m *Machine) { m.Ports.WidthBytes = 24 }, "width"},
		{"port wider than line", func(m *Machine) { m.Ports.WidthBytes = 64 }, "exceeds"},
		{"zero store buffer", func(m *Machine) { m.Ports.StoreBufferEntries = 0 }, "store buffer"},
		{"negative line buffers", func(m *Machine) { m.Ports.LineBuffers = -1 }, "line buffer"},
		{"line buffers without invalidation", func(m *Machine) {
			m.Ports.LineBuffers = 4
			m.Ports.StoresCheckLineBuffers = false
		}, "stale"},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			err := mutate(t, tt.f)
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tt.frag) {
				t.Errorf("error %q does not mention %q", err, tt.frag)
			}
		})
	}
}

func TestValidateAcceptsVariants(t *testing.T) {
	variants := []func(*Machine){
		func(m *Machine) { m.Pred.Kind = "static"; m.Pred.TableEntries = 0 },
		func(m *Machine) { m.Pred.Kind = "bimodal"; m.Pred.HistoryBits = 0 },
		func(m *Machine) { m.Pred.BTBEntries = 0 },
		func(m *Machine) { m.Ports.WidthBytes = 16 },
		func(m *Machine) { m.Ports.Count = 8 },
		func(m *Machine) { m.L1D.MSHRs = 0 },
		func(m *Machine) { m.Mem.DRAMInterval = 0 },
	}
	for i, f := range variants {
		if err := mutate(t, f); err != nil {
			t.Errorf("variant %d rejected: %v", i, err)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	want := BestSingle()
	data, err := want.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestFromJSONRejects(t *testing.T) {
	if _, err := FromJSON([]byte("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	m := Baseline()
	m.Ports.Count = 0
	data, err := m.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromJSON(data); err == nil {
		t.Error("invalid machine accepted through FromJSON")
	}
}
